// Package scenarios holds the explore scenarios for the repository's
// kill-safe abstractions. Each scenario builds a small world on a
// deterministic runtime, names the threads that must finish and the
// faults the explorer may inject, and states the invariant that defines
// success. The unsafe variants exist to be broken: the explorer finds the
// schedule in which a custodian shutdown wedges a surviving task, which
// is the paper's motivating failure.
package scenarios

import (
	"fmt"

	"repro/abstractions/msgqueue"
	"repro/abstractions/pool"
	"repro/abstractions/queue"
	"repro/abstractions/swapchan"
	"repro/internal/core"
	"repro/internal/explore"
)

// All returns every registered scenario, in a fixed order.
func All() []explore.Scenario {
	return []explore.Scenario{
		QueueUnsafe(),
		QueueKillSafe(),
		MsgQueueRemotePred(),
		MsgQueueFIFO(),
		SwapChan(),
		Pool(),
	}
}

// ByName looks a scenario up by name.
func ByName(name string) (explore.Scenario, bool) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, true
		}
	}
	return explore.Scenario{}, false
}

// queueScenario is the paper's motivating example. A creator task under
// custodian A builds a queue, seeds it, and hands it to a survivor task
// under custodian B. The explorer may shut custodian A down at any
// decision point. With the kill-safe queue the survivor always finishes:
// its operations resurrect the suspended manager via thread-resume. With
// the unsafe queue there is a window — after the handoff, before the
// survivor's last operation commits — where the shutdown suspends the
// manager forever and the survivor wedges: StatusStuck.
func queueScenario(name, desc string, unsafe bool) explore.Scenario {
	return explore.Scenario{
		Name: name,
		Desc: desc,
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			custA := core.NewCustodian(rt.RootCustodian())
			custB := core.NewCustodian(rt.RootCustodian())
			hand := core.NewChanNamed(rt, "handoff")
			var handed bool
			var got []int
			var opErr error
			rt.SpawnIn(custA, "creator", func(th *core.Thread) {
				var q *queue.Queue[int]
				if unsafe {
					q = queue.NewUnsafe[int](th)
				} else {
					q = queue.New[int](th)
				}
				if err := q.Send(th, 1); err != nil {
					return
				}
				_, _ = core.Sync(th, hand.SendEvt(q))
			})
			surv := rt.SpawnIn(custB, "survivor", func(th *core.Thread) {
				// If custodian A dies before the handoff the queue never
				// escaped it; there is nothing for the survivor to use, so
				// it finishes trivially. DeadEvt ready implies the creator
				// is suspended, so the two arms are never both available.
				v, err := core.Sync(th, core.Choice(
					hand.RecvEvt(),
					core.Wrap(custA.DeadEvt(), func(core.Value) core.Value { return nil }),
				))
				if err != nil || v == nil {
					return
				}
				handed = true
				q := v.(*queue.Queue[int])
				a, err := q.Recv(th)
				if err != nil {
					opErr = err
					return
				}
				if err := q.Send(th, 2); err != nil {
					opErr = err
					return
				}
				b, err := q.Recv(th)
				if err != nil {
					opErr = err
					return
				}
				got = []int{a, b}
			})
			sim.MustFinish(surv)
			sim.VictimCustodian(custA)
			sim.RestrictFaults(explore.ActShutdown)
			sim.Check(func() error {
				if !handed {
					return nil // custodian died pre-handoff; vacuous pass
				}
				if opErr != nil {
					return fmt.Errorf("survivor queue op failed: %w", opErr)
				}
				if len(got) != 2 || got[0] != 1 || got[1] != 2 {
					return fmt.Errorf("survivor received %v, want [1 2]", got)
				}
				return nil
			})
		},
	}
}

// QueueUnsafe is the wedge-finder: the explorer should report StatusStuck
// on some schedule within a small seed budget.
func QueueUnsafe() explore.Scenario {
	return queueScenario("queue-unsafe",
		"custodian shutdown wedges a survivor of the non-kill-safe queue", true)
}

// QueueKillSafe is the same world over the kill-safe queue: every
// schedule must pass.
func QueueKillSafe() explore.Scenario {
	return queueScenario("queue",
		"custodian shutdown never wedges a survivor of the kill-safe queue", false)
}

// MsgQueueRemotePred exercises remote predicate evaluation (DESIGN.md
// finding #2): predicates run in fresh threads under the client's
// custodian, and the reply must join the same sync as the request or the
// manager self-deadlocks. A pure scheduling scenario — no faults — whose
// recorded trace pins the regression.
func MsgQueueRemotePred() explore.Scenario {
	return explore.Scenario{
		Name: "msgqueue-remote-pred",
		Desc: "remote predicates answer without wedging the manager",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var got int
			var gotErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true, RemotePredicates: true})
				cons := th.Spawn("consumer", func(th *core.Thread) {
					v, err := q.Recv(th, func(v int) bool { return v >= 2 })
					got, gotErr = v, err
				})
				sim.MustFinish(cons)
				prod := th.Spawn("producer", func(th *core.Thread) {
					for _, v := range []int{1, 2, 3} {
						if err := q.Send(th, v); err != nil {
							return
						}
					}
				})
				sim.MustFinish(prod)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults() // pure scheduling
			sim.Check(func() error {
				if gotErr != nil {
					return fmt.Errorf("consumer recv failed: %w", gotErr)
				}
				if got != 2 {
					return fmt.Errorf("consumer received %d, want 2 (first value matching v>=2)", got)
				}
				return nil
			})
		},
	}
}

// MsgQueueFIFO exercises selective dequeue ordering (DESIGN.md finding
// #4): a receiver removing a middle element must not let another
// receiver's scan skip untested items (high-water mark, not index). With
// values 1,2,3 queued, the even-receiver must get 2 and the odd-receiver
// must get 1 then 3, in FIFO order, under every schedule.
func MsgQueueFIFO() explore.Scenario {
	return explore.Scenario{
		Name: "msgqueue-fifo",
		Desc: "selective dequeue preserves FIFO for non-matching receivers",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var even int
			var odd []int
			var evenErr, oddErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				q := msgqueue.New[int](th)
				x := th.Spawn("even-receiver", func(th *core.Thread) {
					even, evenErr = q.Recv(th, func(v int) bool { return v%2 == 0 })
				})
				sim.MustFinish(x)
				y := th.Spawn("odd-receiver", func(th *core.Thread) {
					for i := 0; i < 2; i++ {
						v, err := q.Recv(th, func(v int) bool { return v%2 == 1 })
						if err != nil {
							oddErr = err
							return
						}
						odd = append(odd, v)
					}
				})
				sim.MustFinish(y)
				prod := th.Spawn("producer", func(th *core.Thread) {
					for _, v := range []int{1, 2, 3} {
						if err := q.Send(th, v); err != nil {
							return
						}
					}
				})
				sim.MustFinish(prod)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults() // pure scheduling
			sim.Check(func() error {
				if evenErr != nil || oddErr != nil {
					return fmt.Errorf("recv failed: even=%v odd=%v", evenErr, oddErr)
				}
				if even != 2 {
					return fmt.Errorf("even receiver got %d, want 2", even)
				}
				if len(odd) != 2 || odd[0] != 1 || odd[1] != 3 {
					return fmt.Errorf("odd receiver got %v, want [1 3] (FIFO)", odd)
				}
				return nil
			})
		},
	}
}

// SwapChan kills one of two service swappers on the kill-safe swap
// channel: the two client swaps must still finish under every schedule,
// even when the victim dies mid-rendezvous (the manager completes the
// committed exchange on the victim's behalf). One kill at most — with
// both service swappers dead a client can legitimately wait forever for
// a partner, which is starvation, not a kill-safety violation.
func SwapChan() explore.Scenario {
	return explore.Scenario{
		Name: "swapchan",
		Desc: "killing a swapper mid-rendezvous never wedges the kill-safe swap channel",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var errA, errB error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				s := swapchan.NewKillSafe[int](th)
				for i := 0; i < 2; i++ {
					v := th.Spawn(fmt.Sprintf("service-%d", i), func(th *core.Thread) {
						for {
							if _, err := s.Swap(th, 100); err != nil {
								return
							}
						}
					})
					sim.Victim(v)
				}
				a := th.Spawn("client-a", func(th *core.Thread) {
					_, errA = s.Swap(th, 1)
				})
				sim.MustFinish(a)
				b := th.Spawn("client-b", func(th *core.Thread) {
					_, errB = s.Swap(th, 2)
				})
				sim.MustFinish(b)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				if errA != nil || errB != nil {
					return fmt.Errorf("client swap failed: a=%v b=%v", errA, errB)
				}
				return nil
			})
		},
	}
}

// Pool kills the holder of a capacity-1 resource pool's only token: the
// kill-safe pool reclaims the token via the holder's done event and the
// surviving acquirer must finish under every schedule. The holder parks
// on Never, so the only way the survivor ever acquires is the reclaim
// path — every passing schedule exercises it.
func Pool() explore.Scenario {
	return explore.Scenario{
		Name: "pool",
		Desc: "killing a token holder returns the token to the kill-safe pool",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var acqErr, relErr error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				p := pool.New(th, 1)
				holder := th.Spawn("holder", func(th *core.Thread) {
					if err := p.Acquire(th); err != nil {
						return
					}
					_, _ = core.Sync(th, core.Never()) // hold until killed
				})
				sim.Victim(holder)
				surv := th.Spawn("survivor", func(th *core.Thread) {
					acqErr = p.Acquire(th)
					if acqErr == nil {
						relErr = p.Release(th)
					}
				})
				sim.MustFinish(surv)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.Check(func() error {
				if acqErr != nil || relErr != nil {
					return fmt.Errorf("survivor pool ops failed: acquire=%v release=%v", acqErr, relErr)
				}
				return nil
			})
		},
	}
}
