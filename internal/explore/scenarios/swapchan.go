package scenarios

import (
	"fmt"

	"repro/abstractions/swapchan"
	"repro/internal/core"
	"repro/internal/explore"
)

func init() {
	Register(SwapChan())
}

// SwapChan kills one of two service swappers on the kill-safe swap
// channel: the two client swaps must still finish under every schedule,
// even when the victim dies mid-rendezvous (the manager completes the
// committed exchange on the victim's behalf). One kill at most — with
// both service swappers dead a client can legitimately wait forever for
// a partner, which is starvation, not a kill-safety violation.
func SwapChan() explore.Scenario {
	return explore.Scenario{
		Name: "swapchan",
		Desc: "killing a swapper mid-rendezvous never wedges the kill-safe swap channel",
		Setup: func(sim *explore.Sim) {
			rt := sim.RT
			var errA, errB error
			owner := rt.Spawn("owner", func(th *core.Thread) {
				s := swapchan.NewKillSafe[int](th)
				for i := 0; i < 2; i++ {
					v := th.Spawn(fmt.Sprintf("service-%d", i), func(th *core.Thread) {
						for {
							if _, err := s.Swap(th, 100); err != nil {
								return
							}
						}
					})
					sim.Victim(v)
				}
				a := th.Spawn("client-a", func(th *core.Thread) {
					_, errA = s.Swap(th, 1)
				})
				sim.MustFinish(a)
				b := th.Spawn("client-b", func(th *core.Thread) {
					_, errB = s.Swap(th, 2)
				})
				sim.MustFinish(b)
			})
			sim.MustFinish(owner)
			sim.RestrictFaults(explore.ActKill)
			sim.LimitFaults(1)
			sim.Check(func() error {
				if errA != nil || errB != nil {
					return fmt.Errorf("client swap failed: a=%v b=%v", errA, errB)
				}
				return nil
			})
		},
	}
}
