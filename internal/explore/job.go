package explore

import (
	"fmt"
	"math/rand"
)

// Job is one unit of exploration work: run a single schedule of a
// scenario. A fresh job (no Prefix) explores from scratch with the
// seeded picker; a mutation job replays Prefix leniently and then
// explores a fresh tail. Jobs are plain data so the fleet can ship them
// to worker processes; given the same scenario and options, the same
// job produces the same outcome anywhere.
type Job struct {
	// ID orders jobs; the driver processes results in ID order so a
	// seeded run is reproducible regardless of worker count.
	ID int64
	// Seed seeds the random part of the picker.
	Seed int64
	// Bound caps preemptive context switches (negative: unbounded).
	// Bounded jobs prefer continuing the last-granted thread once the
	// budget is spent, which is what makes tier-0 schedules a small,
	// exhaustible space.
	Bound int
	// Prefix, when non-empty, is replayed (leniently) before the seeded
	// tail takes over.
	Prefix []Action
	// SrcLen is the length of the trace Prefix was cut from; the
	// mutation tail scales its fault placement to the remaining extent.
	// Zero means unknown.
	SrcLen int
}

// JobResult is what a worker reports back: the outcome classification
// plus the executed trace (the driver needs the trace for coverage
// hashing and frontier mutation even on a pass — and for shrinking on a
// failure). Err is a string because results cross a process boundary.
type JobResult struct {
	ID     int64
	Status Status
	Err    string
	Steps  int
	Faults int
	Trace  *Trace
}

// Failing mirrors Outcome.Failing for wire-decoded results.
func (r JobResult) Failing() bool {
	return r.Status == StatusStuck || r.Status == StatusFail || r.Status == StatusError
}

// picker builds the job's picker. Fresh unbounded jobs use the plain
// RandomPicker so the uniform strategy reproduces the historical seed
// streams exactly; mutation jobs get the delayed-fault tail.
func (j Job) picker(faultProb float64) Picker {
	if len(j.Prefix) > 0 {
		return &prefixPicker{prefix: j.Prefix, tail: newMutationTail(j.Seed, j.SrcLen-len(j.Prefix))}
	}
	if j.Bound < 0 {
		return NewRandomPicker(j.Seed, faultProb)
	}
	return newBoundedPicker(j.Seed, faultProb, j.Bound)
}

// Run executes the job against sc and packages the outcome.
func (j Job) Run(sc Scenario, opts Options) JobResult {
	opts = opts.withDefaults()
	o := RunOnce(sc, j.picker(opts.FaultProb), j.Seed, opts)
	res := JobResult{
		ID:     j.ID,
		Status: o.Status,
		Steps:  o.Steps,
		Faults: o.Faults,
		Trace:  o.Trace,
	}
	if o.Err != nil {
		res.Err = o.Err.Error()
	}
	return res
}

// boundedPicker is a preemption-bounded random picker: it injects
// faults like RandomPicker, but once its switch budget is spent it
// keeps granting the last-granted thread for as long as that thread
// stays grantable. Only a voluntary switch away from a still-grantable
// thread consumes budget; switches forced by a block, a finish, or a
// suspension are free, as are deliveries and clock advances.
type boundedPicker struct {
	rng       *rand.Rand
	faultProb float64
	bound     int
	last      int64 // last granted thread id; -1 before the first grant
}

func newBoundedPicker(seed int64, faultProb float64, bound int) *boundedPicker {
	return &boundedPicker{rng: rand.New(rand.NewSource(seed)), faultProb: faultProb, bound: bound, last: -1}
}

func (p *boundedPicker) Pick(step int, progress, faults []Action) (Action, error) {
	if len(faults) > 0 && (len(progress) == 0 || p.rng.Float64() < p.faultProb) {
		return faults[p.rng.Intn(len(faults))], nil
	}
	if len(progress) == 0 {
		return Action{}, fmt.Errorf("explore: picker called with no available actions")
	}
	lastUp := false
	for _, a := range progress {
		if a.Kind == ActRun && a.Thread == p.last {
			lastUp = true
			break
		}
	}
	pool := progress
	if lastUp && p.bound <= 0 {
		// Budget spent: the last thread keeps the token. Deliveries and
		// clock advances stay available — their timing is not a thread
		// preemption.
		pool = pool[:0:0]
		for _, a := range progress {
			if a.Kind != ActRun || a.Thread == p.last {
				pool = append(pool, a)
			}
		}
	}
	a := pool[p.rng.Intn(len(pool))]
	if a.Kind == ActRun {
		if lastUp && a.Thread != p.last {
			p.bound--
		}
		p.last = a.Thread
	}
	return a, nil
}

// mutationTail explores the schedule after a replayed prefix. The
// fresh pickers' per-decision coin flip lands a re-placed fault
// geometrically close behind the cut — useless for walking a kill deep
// into the victim's execution. The tail instead draws a multi-scale
// delay up front (half uniform over the remaining extent of the source
// run, so placements spread over the whole live region instead of
// mostly overshooting the end; half log-uniform, probing near the cut)
// and injects a fault at the first opportunity once the delay is
// spent. A delay past the end of the run simply means no fault — the
// fault-free completion of that prefix, also worth seeing occasionally.
type mutationTail struct {
	rng    *rand.Rand
	extent int
	used   int // decisions consumed since the tail took over
	delay  int
}

// newMutationTail builds the tail for a prefix whose source trace had
// extent more actions after the cut (<=0: unknown).
func newMutationTail(seed int64, extent int) *mutationTail {
	if extent < 32 {
		extent = 32
	}
	p := &mutationTail{rng: rand.New(rand.NewSource(seed)), extent: extent}
	p.delay = p.draw()
	return p
}

// draw samples the next inter-fault delay: half uniform over what is
// left of the source run's extent (global spread — shrinking as the
// tail consumes decisions, so a second fault's delay doesn't overshoot
// the end half the time), half log-uniform (local probing near the
// previous cut or fault).
func (p *mutationTail) draw() int {
	if p.rng.Intn(2) == 0 {
		rem := p.extent - p.used
		if rem < 16 {
			rem = 16
		}
		return p.rng.Intn(rem)
	}
	return p.rng.Intn(1 << uint(p.rng.Intn(10)))
}

func (p *mutationTail) Pick(step int, progress, faults []Action) (Action, error) {
	p.used++
	if len(faults) > 0 {
		if p.delay <= 0 || len(progress) == 0 {
			// Re-arm for the next fault: each remaining budget unit gets
			// its own independent delay, so multi-fault placements cover
			// the product space instead of clustering back-to-back.
			p.delay = p.draw()
			return faults[p.rng.Intn(len(faults))], nil
		}
		p.delay--
	}
	if len(progress) == 0 {
		return Action{}, fmt.Errorf("explore: picker called with no available actions")
	}
	return progress[p.rng.Intn(len(progress))], nil
}

// prefixPicker replays a recorded prefix leniently (decisions no longer
// available are skipped — the mutated world may have drifted) and then
// hands over to the tail picker.
type prefixPicker struct {
	prefix []Action
	pos    int
	tail   Picker
}

func (p *prefixPicker) Pick(step int, progress, faults []Action) (Action, error) {
	for p.pos < len(p.prefix) {
		a := p.prefix[p.pos]
		p.pos++
		if available(a, progress, faults) {
			return a, nil
		}
	}
	return p.tail.Pick(step, progress, faults)
}
