package explore

import (
	"testing"
)

func runs(threads ...int64) []Action {
	out := make([]Action, len(threads))
	for i, th := range threads {
		out[i] = Action{Kind: ActRun, Thread: th}
	}
	return out
}

// Identical traces must hash equal — coverage is a pure function of the
// decision sequence.
func TestFootprintIdenticalTracesEqual(t *testing.T) {
	mk := func() *Trace {
		return &Trace{Actions: append(runs(1, 2, 1),
			Action{Kind: ActKill, Thread: 2},
			Action{Kind: ActRun, Thread: 1},
			Action{Kind: ActClock},
		)}
	}
	if Footprint(mk()) != Footprint(mk()) {
		t.Fatal("identical traces hash differently")
	}
}

// Moving a single injected kill by one victim grant must hash distinct:
// the fault hits a different point of the victim's execution.
func TestFootprintKillPositionDistinct(t *testing.T) {
	early := &Trace{Actions: []Action{
		{Kind: ActRun, Thread: 1},
		{Kind: ActKill, Thread: 2}, // before victim's first grant
		{Kind: ActRun, Thread: 2},
		{Kind: ActRun, Thread: 1},
	}}
	late := &Trace{Actions: []Action{
		{Kind: ActRun, Thread: 1},
		{Kind: ActRun, Thread: 2},
		{Kind: ActKill, Thread: 2}, // after it
		{Kind: ActRun, Thread: 1},
	}}
	if Footprint(early) == Footprint(late) {
		t.Fatal("kill at victim grant 0 and grant 1 hash equal")
	}
}

// Pure grant-order slicing between fault points is deliberately NOT
// distinct: the footprint ignores how straight-line work was interleaved.
func TestFootprintIgnoresGrantSlicing(t *testing.T) {
	a := &Trace{Actions: append(runs(1, 1, 2, 2), Action{Kind: ActKill, Thread: 2})}
	b := &Trace{Actions: append(runs(1, 2, 1, 2), Action{Kind: ActKill, Thread: 2})}
	if Footprint(a) != Footprint(b) {
		t.Fatal("same fault point under different slicings hashed distinct")
	}
}

func TestCovBucket(t *testing.T) {
	for n := int64(0); n <= 4; n++ {
		if covBucket(n) != n {
			t.Fatalf("covBucket(%d) = %d, want exact", n, covBucket(n))
		}
	}
	if covBucket(5) == covBucket(50) {
		t.Fatal("magnitudes 5 and 50 share a bucket")
	}
	if covBucket(40) != covBucket(50) {
		t.Fatal("nearby large magnitudes should share a bucket")
	}
}

func TestPreemptions(t *testing.T) {
	cases := []struct {
		name string
		tr   []Action
		want int
	}{
		{"straight-line", runs(1, 1, 1), 0},
		// 1 is granted again later, so the switch to 2 preempted it.
		{"one-preemption", runs(1, 2, 1), 1},
		// 1 never runs again: the switch was forced (block/finish), free.
		{"forced-switch", runs(1, 2, 2), 0},
		// Switches at i=1,2,3 preempt (the displaced thread runs again
		// later); the final grant follows 2's last slice, so it is free.
		{"ping-pong", runs(1, 2, 1, 2, 1), 3},
		// Deliveries and clock advances between grants are not switches.
		{"clock-between", []Action{
			{Kind: ActRun, Thread: 1}, {Kind: ActClock}, {Kind: ActRun, Thread: 1},
		}, 0},
	}
	for _, tc := range cases {
		if got := Preemptions(&Trace{Actions: tc.tr}); got != tc.want {
			t.Errorf("%s: Preemptions = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestCoverageMap(t *testing.T) {
	var m CoverageMap
	if !m.Add(7) || m.Add(7) {
		t.Fatal("Add novelty reporting wrong")
	}
	if !m.Has(7) || m.Has(8) || m.Distinct() != 1 {
		t.Fatal("Has/Distinct wrong")
	}
}

// The frontier drains lowest preemption tier first, FIFO within a tier,
// and drops exact-duplicate prefixes.
func TestFrontierTierOrder(t *testing.T) {
	var f Frontier
	deep := runs(1, 2, 1, 2, 1)  // 4 preemptions
	shallowA := runs(1, 1, 2, 2) // 0
	shallowB := runs(2, 2, 1, 1) // 0
	f.Push(deep, 40)
	f.Push(shallowA, 20)
	f.Push(shallowB, 30)
	f.Push(append([]Action(nil), shallowA...), 20) // duplicate: dropped
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dup not dropped?)", f.Len())
	}
	// The shallow tier drains first, round-robin within the tier, each
	// prefix popping frontierMaxAttempts times before it retires. The
	// source-trace length rides along with each prefix.
	for i := 0; i < frontierMaxAttempts; i++ {
		for _, want := range []struct {
			prefix []Action
			srcLen int
		}{{shallowA, 20}, {shallowB, 30}} {
			got, srcLen, ok := f.Pop()
			if !ok || actionsHash(got) != actionsHash(want.prefix) || srcLen != want.srcLen {
				t.Fatalf("shallow attempt %d: got %v (srcLen %d), want %v (srcLen %d)",
					i, got, srcLen, want.prefix, want.srcLen)
			}
		}
	}
	// Only after the shallow prefixes retire does the deep tier pop.
	for i := 0; i < frontierMaxAttempts; i++ {
		got, srcLen, ok := f.Pop()
		if !ok || actionsHash(got) != actionsHash(deep) || srcLen != 40 {
			t.Fatalf("deep attempt %d: wrong prefix", i)
		}
	}
	if _, _, ok := f.Pop(); ok {
		t.Fatal("pop from exhausted frontier succeeded")
	}
	// A retired prefix can never re-enter: its dedup mark stays.
	f.Push(shallowA, 20)
	if f.Len() != 0 {
		t.Fatal("retired prefix re-entered the frontier")
	}
}

// Mutation prefixes cut at each fault — one prefix dropping it (so the
// tail can land it later) and one keeping it — and fall back to the
// half-trace for fault-free runs.
func TestMutationPrefixes(t *testing.T) {
	tr := &Trace{Actions: []Action{
		{Kind: ActRun, Thread: 1},
		{Kind: ActKill, Thread: 2},
		{Kind: ActRun, Thread: 1},
		{Kind: ActRun, Thread: 2},
	}}
	ps := mutationPrefixes(tr)
	if len(ps) != 2 {
		t.Fatalf("got %d prefixes, want 2 (drop-fault and keep-fault)", len(ps))
	}
	if len(ps[0]) != 1 || len(ps[1]) != 2 {
		t.Fatalf("prefix lengths %d,%d, want 1,2", len(ps[0]), len(ps[1]))
	}
	if ps[1][1].Kind != ActKill {
		t.Fatal("keep-fault prefix does not end at the fault")
	}

	plain := &Trace{Actions: runs(1, 2, 1, 2)}
	ps = mutationPrefixes(plain)
	if len(ps) != 1 || len(ps[0]) != 2 {
		t.Fatalf("fault-free fallback: got %d prefixes (len %d), want half-trace", len(ps), len(ps[0]))
	}
}
