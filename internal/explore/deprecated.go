package explore

// Deprecated shims for the pre-fleet explore API. They survive one
// release so out-of-tree callers can migrate; nothing in this
// repository calls them.

// ExploreSeeds is the old positional Explore signature: n
// seeded-random schedules from baseSeed, uniform strategy, one worker.
//
// Deprecated: set Options.Seeds and Options.BaseSeed and call
// Explore(sc, opts).
func ExploreSeeds(sc Scenario, opts Options, baseSeed int64, n int) *Report {
	opts.Seeds = n
	opts.BaseSeed = baseSeed
	opts.Strategy = StrategyUniform
	opts.Workers = 1
	opts.Budget = 0
	return Explore(sc, opts)
}

// ReplayLenient re-executes a trace tolerantly, skipping decisions that
// are no longer available.
//
// Deprecated: set Options.Lenient and call Replay(sc, tr, opts).
func ReplayLenient(sc Scenario, tr *Trace, opts Options) *Outcome {
	opts.Lenient = true
	return Replay(sc, tr, opts)
}

// NewLenientReplayPicker returns a lenient replayer for tr.
//
// Deprecated: use NewReplayPicker and set its Lenient field (or replay
// through Replay with Options.Lenient).
func NewLenientReplayPicker(tr *Trace) *ReplayPicker {
	p := NewReplayPicker(tr)
	p.Lenient = true
	return p
}
