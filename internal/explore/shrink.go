package explore

// Shrink greedily minimizes a failing trace: it repeatedly tries deleting
// chunks of decisions (halving the chunk size down to single decisions),
// replaying each candidate leniently, and keeps any candidate that still
// fails with a strictly shorter *executed* trace. The executed trace is
// the canonical form — lenient replay may skip deleted-dependent
// decisions or append fallback steps, so the candidate itself is not what
// is kept. failing defaults to Outcome.Failing when nil. Returns the
// minimized trace and the number of replays spent.
func Shrink(sc Scenario, tr *Trace, opts Options, failing func(*Outcome) bool) (*Trace, int) {
	if failing == nil {
		failing = (*Outcome).Failing
	}
	opts.Lenient = true
	cur := tr
	replays := 0
	improved := true
	for improved {
		improved = false
		for chunk := len(cur.Actions) / 2; chunk >= 1; chunk /= 2 {
			for off := 0; off+chunk <= len(cur.Actions); off++ {
				cand := &Trace{Scenario: cur.Scenario, Seed: cur.Seed}
				cand.Actions = append(cand.Actions, cur.Actions[:off]...)
				cand.Actions = append(cand.Actions, cur.Actions[off+chunk:]...)
				o := Replay(sc, cand, opts)
				replays++
				if failing(o) && o.Trace != nil && len(o.Trace.Actions) < len(cur.Actions) {
					cur = o.Trace
					improved = true
					// Restart the scan at the (possibly much shorter)
					// current trace.
					chunk = len(cur.Actions)
					break
				}
			}
		}
	}
	return cur, replays
}
