package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/explore"
)

// The fleet pipe protocol is JSON lines over a byte stream — stdin/stdout
// of a worker process, or an in-memory pipe for in-process workers. The
// driver speaks first with one hello naming the scenario and the per-run
// options; after that it streams jobs and the worker streams results,
// one JSON object per line, until the driver closes its end. Traces and
// prefixes cross the boundary in the trace text format, so the wire
// shapes stay stable even as Action grows fields.
const protoVersion = 1

type helloMsg struct {
	Proto       int     `json:"proto"`
	Scenario    string  `json:"scenario"`
	MaxSteps    int     `json:"maxSteps,omitempty"`
	FaultBudget int     `json:"faultBudget,omitempty"`
	StepTimeout int64   `json:"stepTimeoutNs,omitempty"`
	FaultProb   float64 `json:"faultProb,omitempty"`
}

type jobMsg struct {
	ID     int64  `json:"id"`
	Seed   int64  `json:"seed"`
	Bound  int    `json:"bound"`
	Prefix string `json:"prefix,omitempty"`
	SrcLen int    `json:"srcLen,omitempty"`
}

type resultMsg struct {
	ID     int64  `json:"id"`
	Status int    `json:"status"`
	Err    string `json:"err,omitempty"`
	Steps  int    `json:"steps"`
	Faults int    `json:"faults"`
	Trace  string `json:"trace,omitempty"`
}

func helloFor(scenario string, opts explore.Options) helloMsg {
	return helloMsg{
		Proto:       protoVersion,
		Scenario:    scenario,
		MaxSteps:    opts.MaxSteps,
		FaultBudget: opts.FaultBudget,
		StepTimeout: int64(opts.StepTimeout),
		FaultProb:   opts.FaultProb,
	}
}

func (m jobMsg) job() (explore.Job, error) {
	j := explore.Job{ID: m.ID, Seed: m.Seed, Bound: m.Bound, SrcLen: m.SrcLen}
	if m.Prefix != "" {
		prefix, err := explore.DecodeActions(m.Prefix)
		if err != nil {
			return explore.Job{}, fmt.Errorf("fleet: job %d: bad prefix: %w", m.ID, err)
		}
		j.Prefix = prefix
	}
	return j, nil
}

func jobMsgFor(j explore.Job) jobMsg {
	m := jobMsg{ID: j.ID, Seed: j.Seed, Bound: j.Bound, SrcLen: j.SrcLen}
	if len(j.Prefix) > 0 {
		m.Prefix = explore.EncodeActions(j.Prefix)
	}
	return m
}

func (m resultMsg) result() (explore.JobResult, error) {
	r := explore.JobResult{
		ID:     m.ID,
		Status: explore.Status(m.Status),
		Err:    m.Err,
		Steps:  m.Steps,
		Faults: m.Faults,
	}
	if m.Trace != "" {
		tr, err := explore.DecodeTrace(strings.NewReader(m.Trace))
		if err != nil {
			return explore.JobResult{}, fmt.Errorf("fleet: result %d: bad trace: %w", m.ID, err)
		}
		r.Trace = tr
	}
	return r, nil
}

func resultMsgFor(r explore.JobResult) resultMsg {
	m := resultMsg{
		ID:     r.ID,
		Status: int(r.Status),
		Err:    r.Err,
		Steps:  r.Steps,
		Faults: r.Faults,
	}
	if r.Trace != nil {
		m.Trace = r.Trace.EncodeToString()
	}
	return m
}

// Serve runs the worker side of the fleet protocol: read the hello,
// resolve the scenario through lookup, then run every job that arrives
// on r and write its result to w. Returns nil when the driver closes the
// stream. This is what `explore worker` calls with os.Stdin/os.Stdout —
// and what in-process workers call over an io.Pipe, so one code path
// serves both.
func Serve(r io.Reader, w io.Writer, lookup func(string) (explore.Scenario, bool)) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	var hello helloMsg
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("fleet: read hello: %w", err)
	}
	if hello.Proto != protoVersion {
		return fmt.Errorf("fleet: protocol version %d, worker speaks %d", hello.Proto, protoVersion)
	}
	sc, ok := lookup(hello.Scenario)
	if !ok {
		return fmt.Errorf("fleet: unknown scenario %q", hello.Scenario)
	}
	opts := explore.Options{
		MaxSteps:    hello.MaxSteps,
		FaultBudget: hello.FaultBudget,
		FaultProb:   hello.FaultProb,
	}
	if hello.StepTimeout > 0 {
		opts.StepTimeout = time.Duration(hello.StepTimeout)
	}

	for {
		var jm jobMsg
		if err := dec.Decode(&jm); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("fleet: read job: %w", err)
		}
		j, err := jm.job()
		if err != nil {
			return err
		}
		if err := enc.Encode(resultMsgFor(j.Run(sc, opts))); err != nil {
			return fmt.Errorf("fleet: write result: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("fleet: flush result: %w", err)
		}
	}
}
