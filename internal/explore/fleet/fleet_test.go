package fleet_test

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/explore"
	"repro/internal/explore/fleet"
	"repro/internal/explore/scenarios"
)

// The worker-process tests re-exec this test binary: when the marker
// variable is set, TestMain speaks the fleet protocol on stdin/stdout
// instead of running tests — exactly what `explore worker` does.
const workerEnv = "FLEET_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := fleet.Serve(os.Stdin, os.Stdout, scenarios.ByName); err != nil {
			io.WriteString(os.Stderr, err.Error()+"\n")
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func mustScenario(t *testing.T, name string) explore.Scenario {
	t.Helper()
	sc, ok := scenarios.ByName(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return sc
}

func findingKeys(rep *fleet.Report) []uint64 {
	keys := make([]uint64, len(rep.Findings))
	for i, f := range rep.Findings {
		keys[i] = f.Hash
	}
	return keys
}

// The fleet must find the unsafe queue's wedge, shrink it, dedup it, and
// pin it with a repro that strictly replays to the same failure.
func TestFleetFindsShrinksAndPinsWedge(t *testing.T) {
	sc := mustScenario(t, "queue-unsafe")
	dir := t.TempDir()
	opts := explore.Options{Seeds: 200, BaseSeed: 1, Strategy: explore.StrategyCoverage}
	rep, err := fleet.Run(sc, opts, fleet.Config{PinDir: dir, MaxFindings: 2})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if len(rep.Findings) == 0 {
		t.Fatalf("no findings in %d schedules (outcomes %v)", rep.Schedules, rep.Outcomes)
	}
	for i, f := range rep.Findings {
		if f.Status != explore.StatusStuck {
			t.Fatalf("finding %d: status %v, want stuck (err=%s)", i, f.Status, f.Err)
		}
		if len(f.Trace.Actions) >= f.ShrunkFrom {
			t.Errorf("finding %d: shrink did not shrink (%d -> %d)", i, f.ShrunkFrom, len(f.Trace.Actions))
		}
		if f.Path == "" || f.Repro == "" {
			t.Fatalf("finding %d: not pinned (path=%q repro=%q)", i, f.Path, f.Repro)
		}
		tr, err := explore.ReadTraceFile(f.Path)
		if err != nil {
			t.Fatalf("finding %d: read pin: %v", i, err)
		}
		// The pinned repro gates on a strict replay reaching f.Status.
		o := explore.Replay(sc, tr, explore.Options{})
		if o.Status != f.Status {
			t.Fatalf("finding %d: pinned trace replays to %v, repro expects %v", i, o.Status, f.Status)
		}
	}
	if len(rep.Findings) == 2 && rep.Findings[0].Hash == rep.Findings[1].Hash {
		t.Fatal("dedup failed: two findings with the same shrunk-trace hash")
	}
}

// Same driver seed, same options → same pinned findings, byte for byte.
func TestFleetRunReproducible(t *testing.T) {
	sc := mustScenario(t, "queue-unsafe")
	opts := explore.Options{Seeds: 150, BaseSeed: 7, Strategy: explore.StrategyCoverage}
	run := func(dir string) *fleet.Report {
		rep, err := fleet.Run(sc, opts, fleet.Config{PinDir: dir, MaxFindings: 3})
		if err != nil {
			t.Fatalf("fleet run: %v", err)
		}
		return rep
	}
	a := run(t.TempDir())
	dirB := t.TempDir()
	b := run(dirB)
	if !reflect.DeepEqual(findingKeys(a), findingKeys(b)) {
		t.Fatalf("finding hashes differ across identical runs: %x vs %x", findingKeys(a), findingKeys(b))
	}
	if a.Schedules != b.Schedules || a.Distinct != b.Distinct {
		t.Fatalf("run shape differs: %d/%d schedules, %d/%d distinct",
			a.Schedules, b.Schedules, a.Distinct, b.Distinct)
	}
	for i := range a.Findings {
		fa, fb := a.Findings[i], b.Findings[i]
		if fa.Trace.EncodeToString() != fb.Trace.EncodeToString() {
			t.Fatalf("finding %d traces differ across identical runs", i)
		}
		if filepath.Base(fa.Path) != filepath.Base(fb.Path) {
			t.Fatalf("finding %d pinned under different names: %s vs %s", i, fa.Path, fb.Path)
		}
	}
}

// Worker count is an execution detail: 1 worker and 3 workers must
// observe the same job stream and produce identical findings.
func TestFleetWorkerCountInvariant(t *testing.T) {
	sc := mustScenario(t, "queue-unsafe")
	base := explore.Options{Seeds: 150, BaseSeed: 1, Strategy: explore.StrategyCoverage}
	run := func(workers int) *fleet.Report {
		opts := base
		opts.Workers = workers
		rep, err := fleet.Run(sc, opts, fleet.Config{MaxFindings: 3})
		if err != nil {
			t.Fatalf("fleet run (%d workers): %v", workers, err)
		}
		return rep
	}
	one, three := run(1), run(3)
	if !reflect.DeepEqual(findingKeys(one), findingKeys(three)) {
		t.Fatalf("findings differ by worker count: %x vs %x", findingKeys(one), findingKeys(three))
	}
	if one.Schedules != three.Schedules {
		t.Fatalf("schedule counts differ by worker count: %d vs %d", one.Schedules, three.Schedules)
	}
}

// The same sweep through real worker processes (this test binary
// re-exec'd) must match the in-process run exactly — the protocol adds
// serialization, not semantics.
func TestFleetProcessWorkersMatchInProcess(t *testing.T) {
	sc := mustScenario(t, "queue-unsafe")
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	t.Setenv(workerEnv, "1") // inherited by the re-exec'd children
	opts := explore.Options{Seeds: 120, BaseSeed: 1, Strategy: explore.StrategyCoverage, Workers: 2}
	procRep, err := fleet.Run(sc, opts, fleet.Config{
		WorkerCommand: []string{exe},
		MaxFindings:   2,
	})
	if err != nil {
		t.Fatalf("process fleet run: %v", err)
	}
	inprocRep, err := fleet.Run(sc, opts, fleet.Config{MaxFindings: 2})
	if err != nil {
		t.Fatalf("in-process fleet run: %v", err)
	}
	if !reflect.DeepEqual(findingKeys(procRep), findingKeys(inprocRep)) {
		t.Fatalf("process and in-process findings differ: %x vs %x",
			findingKeys(procRep), findingKeys(inprocRep))
	}
	if procRep.Schedules != inprocRep.Schedules || procRep.Distinct != inprocRep.Distinct {
		t.Fatalf("process/in-process run shape differs: %d/%d schedules, %d/%d distinct",
			procRep.Schedules, inprocRep.Schedules, procRep.Distinct, inprocRep.Distinct)
	}
}

// Coverage-guided exploration must buy meaningfully more distinct
// interleavings than the uniform sweep at the same schedule budget.
func TestCoverageBeatsUniformOnDistinct(t *testing.T) {
	sc := mustScenario(t, "txn-kill-midlock")
	const seeds = 60
	run := func(strat explore.Strategy) int {
		rep, err := fleet.Run(sc, explore.Options{Seeds: seeds, BaseSeed: 1, Strategy: strat}, fleet.Config{})
		if err != nil {
			t.Fatalf("fleet run (%v): %v", strat, err)
		}
		if len(rep.Findings) > 0 {
			t.Fatalf("kill-safe scenario produced a finding under %v: %+v", strat, rep.Findings[0])
		}
		return rep.Distinct
	}
	uniform := run(explore.StrategyUniform)
	coverage := run(explore.StrategyCoverage)
	t.Logf("distinct interleavings over %d schedules: uniform %d, coverage %d", seeds, uniform, coverage)
	if coverage <= uniform {
		t.Fatalf("coverage strategy explored %d distinct interleavings, uniform %d — guidance is not paying",
			coverage, uniform)
	}
}
