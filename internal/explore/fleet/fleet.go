// Package fleet runs the explorer at scale: a driver process shards
// schedule jobs across worker processes (or in-process protocol workers)
// and digests their results through the same coverage-guided Driver the
// in-process Explore uses. Each worker executes whole schedules on its
// own deterministic runtime; the pipe protocol ships jobs out and traces
// back. The driver observes results strictly in job-ID order and
// generates job k only once result k-window has been observed, so the
// job stream — and with it the findings — is a pure function of the
// Options, regardless of worker count or scheduling jitter.
//
// Failing outcomes are handled driver-side: the trace is shrunk, the
// shrunk trace is hashed for dedup (one finding per distinct minimal
// schedule, not per seed that stumbled into it), and — when a pin
// directory is configured — written out with a ready-to-run repro
// command line.
package fleet

import (
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/explore"
)

// Config shapes a fleet run beyond the exploration Options.
type Config struct {
	// WorkerCommand is the argv to exec for each worker process (the
	// binary must speak the fleet protocol on stdin/stdout — `explore
	// worker` does). Nil runs workers in-process over pipes instead;
	// the protocol is exercised either way.
	WorkerCommand []string
	// PinDir, when non-empty, is where shrunk failing traces are
	// written as `<scenario>-<hash>.trace`.
	PinDir string
	// MaxFindings caps distinct findings before the run stops early.
	// Default 1 — stop at the first failure, like a plain sweep.
	MaxFindings int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Finding is one distinct failure: a shrunk, deduplicated failing trace.
type Finding struct {
	Status explore.Status
	Err    string
	// Seed is the seed of the job that first hit this failure.
	Seed int64
	// Trace is the shrunk trace; Hash identifies it for dedup.
	Trace *explore.Trace
	Hash  uint64
	// ShrunkFrom counts the decisions in the original failing trace.
	ShrunkFrom int
	// Path and Repro are set when the finding was pinned: the trace
	// file and the command line that replays it.
	Path  string
	Repro string
}

// Report aggregates a fleet run.
type Report struct {
	Scenario  string
	Workers   int
	Schedules int
	Steps     int
	Faults    int
	Outcomes  map[explore.Status]int
	// Distinct counts distinct schedule footprints — what a strategy's
	// budget actually bought.
	Distinct int
	Elapsed  time.Duration
	Findings []Finding
}

// jobWindow is how far job generation may run ahead of observation. It
// is a fixed constant — not a function of worker count — so the
// coverage driver sees the same observation/generation interleaving,
// and therefore emits the same job stream, however many workers execute
// it.
const jobWindow = 16

// Run explores sc per opts across a fleet of workers. It returns the
// report and a non-nil error only for harness-level failures (a worker
// that died mid-job, an unwritable pin); findings are data, not errors.
func Run(sc explore.Scenario, opts explore.Options, cfg Config) (*Report, error) {
	if cfg.MaxFindings <= 0 {
		cfg.MaxFindings = 1
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	d := explore.NewDriver(opts)
	rep := &Report{Scenario: sc.Name, Outcomes: make(map[explore.Status]int)}

	workers := 1
	if opts.Workers > 1 {
		workers = opts.Workers
	}
	rep.Workers = workers
	hello := helloFor(sc.Name, opts)
	events := make(chan event, workers*4)
	conns := make([]*workerConn, workers)
	alive := make([]bool, workers)
	load := make([]int, workers)
	inflight := make(map[int64]int) // job ID → worker index
	for i := 0; i < workers; i++ {
		var err error
		if len(cfg.WorkerCommand) > 0 {
			conns[i], err = startProcWorker(i, cfg.WorkerCommand, hello, events)
		} else {
			conns[i], err = startInprocWorker(i, sc, hello, events)
		}
		if err != nil {
			for j := 0; j < i; j++ {
				conns[j].closeInput()
			}
			return rep, err
		}
		alive[i] = true
	}
	defer func() {
		for i, wc := range conns {
			if wc != nil {
				wc.closeInput()
				if alive[i] {
					_ = wc.wait()
				}
			}
		}
	}()

	// maxLoad keeps each worker one job ahead so the pipe round-trip
	// hides behind schedule execution.
	const maxLoad = 2

	seen := make(map[uint64]bool) // shrunk-trace hashes already recorded
	pending := make(map[int64]explore.JobResult)
	var queue []explore.Job // generated, not yet sent
	var nextObs int64
	var runErr error

	observe := func(res explore.JobResult) {
		d.Observe(res)
		rep.Schedules++
		rep.Steps += res.Steps
		rep.Faults += res.Faults
		rep.Outcomes[res.Status]++
		if !res.Failing() || res.Trace == nil || len(rep.Findings) >= cfg.MaxFindings {
			return
		}
		logf("job %d (seed %d): %s — shrinking %d decisions",
			res.ID, res.Trace.Seed, res.Status, len(res.Trace.Actions))
		f, err := digestFailure(sc, res, opts, cfg, seen)
		if err != nil && runErr == nil {
			runErr = err
		}
		if f == nil {
			return
		}
		rep.Findings = append(rep.Findings, *f)
		logf("finding %d: %s, %d decisions (hash %016x)%s",
			len(rep.Findings), f.Status, len(f.Trace.Actions), f.Hash, pinNote(f))
		if len(rep.Findings) >= cfg.MaxFindings {
			d.Stop()
		}
	}

	// generate tops the queue up to the window; dispatch drains it onto
	// whichever live workers have capacity. Generation timing is
	// deterministic (window over the observation counter); send timing
	// is not, and does not need to be.
	generate := func() {
		for d.Issued()-nextObs < jobWindow {
			j, ok := d.Next()
			if !ok {
				return
			}
			queue = append(queue, j)
		}
	}
	dispatch := func() {
		for len(queue) > 0 {
			idx := -1
			for i := range conns {
				if alive[i] && load[i] < maxLoad && (idx < 0 || load[i] < load[idx]) {
					idx = i
				}
			}
			if idx < 0 {
				return
			}
			j := queue[0]
			queue = queue[1:]
			if err := conns[idx].send(jobMsgFor(j)); err != nil {
				// The pump will report the death; the job is lost, and a
				// synthesized error result keeps the observation stream
				// gap-free for the IDs behind it.
				alive[idx] = false
				if runErr == nil {
					runErr = fmt.Errorf("fleet: send to worker %d: %w", idx, err)
				}
				pending[j.ID] = explore.JobResult{ID: j.ID, Status: explore.StatusError, Err: "worker died"}
				continue
			}
			inflight[j.ID] = idx
			load[idx]++
		}
	}

	anyAlive := func() bool {
		for _, a := range alive {
			if a {
				return true
			}
		}
		return false
	}

	generate()
	dispatch()
	for {
		if _, ok := pending[nextObs]; !ok && len(inflight) == 0 && (len(queue) == 0 || !anyAlive()) {
			break
		}
		if len(inflight) > 0 {
			ev := <-events
			if ev.closed {
				if alive[ev.worker] {
					alive[ev.worker] = false
					err := conns[ev.worker].wait()
					if ev.err == nil {
						ev.err = err
					}
					for id, w := range inflight {
						if w == ev.worker {
							delete(inflight, id)
							pending[id] = explore.JobResult{ID: id, Status: explore.StatusError, Err: "worker died"}
						}
					}
					if ev.err != nil && runErr == nil {
						runErr = fmt.Errorf("fleet: worker %d: %w", ev.worker, ev.err)
					}
				}
			} else {
				res, err := ev.res.result()
				if err != nil {
					res = explore.JobResult{ID: ev.res.ID, Status: explore.StatusError, Err: err.Error()}
					if runErr == nil {
						runErr = err
					}
				}
				if w, ok := inflight[res.ID]; ok {
					delete(inflight, res.ID)
					load[w]--
				}
				pending[res.ID] = res
			}
		}
		for {
			res, ok := pending[nextObs]
			if !ok {
				break
			}
			delete(pending, nextObs)
			nextObs++
			observe(res)
			// Top generation up after every observation — not once per
			// event batch — so the issued-job count at any observation
			// point (including an early stop) is a pure function of the
			// observation stream, not of how results happened to batch.
			generate()
		}
		dispatch()
	}

	rep.Distinct = d.Distinct()
	rep.Elapsed = d.Elapsed()
	return rep, runErr
}

// digestFailure shrinks a failing result, dedups it against seen, and
// pins it when configured. Returns nil when the failure is a duplicate
// of an already-recorded finding.
func digestFailure(sc explore.Scenario, res explore.JobResult, opts explore.Options, cfg Config, seen map[uint64]bool) (*Finding, error) {
	shrunk, _ := explore.Shrink(sc, res.Trace, opts, nil)
	h := fnv.New64a()
	io.WriteString(h, sc.Name)
	io.WriteString(h, "\n")
	io.WriteString(h, explore.EncodeActions(shrunk.Actions))
	hash := h.Sum64()
	if seen[hash] {
		return nil, nil
	}
	seen[hash] = true

	// Re-verify the shrunk trace strictly: its actions are exactly what
	// the final lenient replay executed, so a strict replay must land on
	// the same failure — and its status is what the pinned repro gates on.
	verify := explore.Replay(sc, shrunk, opts)
	f := &Finding{
		Status:     verify.Status,
		Seed:       res.Trace.Seed,
		Trace:      shrunk,
		Hash:       hash,
		ShrunkFrom: len(res.Trace.Actions),
	}
	if verify.Err != nil {
		f.Err = verify.Err.Error()
	} else {
		f.Err = res.Err
	}
	if !verify.Failing() {
		// Should not happen (Shrink keeps executed traces); record the
		// original failure rather than a bogus pass.
		f.Status = res.Status
		f.Err = res.Err
	}
	if cfg.PinDir != "" {
		f.Path = filepath.Join(cfg.PinDir, fmt.Sprintf("%s-%016x.trace", sc.Name, hash))
		if err := shrunk.WriteFile(f.Path); err != nil {
			return f, fmt.Errorf("fleet: pin finding: %w", err)
		}
		f.Repro = fmt.Sprintf("go run ./cmd/explore replay -trace %s -expect %s", f.Path, f.Status)
	}
	return f, nil
}

func pinNote(f *Finding) string {
	if f.Path == "" {
		return ""
	}
	return " pinned to " + f.Path
}

// Summary renders the report as the explore CLI prints it.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s: %d schedules, %d decisions, %d faults, %d distinct interleavings in %v (%d workers)\n",
		r.Scenario, r.Schedules, r.Steps, r.Faults, r.Distinct, r.Elapsed.Round(time.Millisecond), r.Workers)
	statuses := make([]explore.Status, 0, len(r.Outcomes))
	for st := range r.Outcomes {
		statuses = append(statuses, st)
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i] < statuses[j] })
	for _, st := range statuses {
		fmt.Fprintf(&sb, "  %-7s %d\n", st, r.Outcomes[st])
	}
	for i, f := range r.Findings {
		fmt.Fprintf(&sb, "finding %d: %s (seed %d, %d -> %d decisions, hash %016x)\n",
			i+1, f.Status, f.Seed, f.ShrunkFrom, len(f.Trace.Actions), f.Hash)
		if f.Err != "" {
			fmt.Fprintf(&sb, "  %s\n", f.Err)
		}
		if f.Repro != "" {
			fmt.Fprintf(&sb, "  repro: %s\n", f.Repro)
		}
	}
	return sb.String()
}
