package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"

	"repro/internal/explore"
)

// event is what a worker pump delivers to the fleet loop: a result, or
// the worker's death (err non-nil, or clean EOF with err == nil after
// the driver closed its stdin).
type event struct {
	worker int
	res    resultMsg
	closed bool
	err    error
}

// workerConn is one attached worker: a way to send it jobs and a way to
// shut it down. Results come back on the shared event channel its pump
// goroutine feeds.
type workerConn struct {
	enc   *json.Encoder
	bw    *bufio.Writer
	stdin io.Closer
	wait  func() error // reap the process / goroutine; nil error on clean exit
}

func (wc *workerConn) send(m any) error {
	if err := wc.enc.Encode(m); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// closeInput signals end-of-jobs; the worker drains and exits.
func (wc *workerConn) closeInput() {
	if wc.stdin != nil {
		_ = wc.stdin.Close()
		wc.stdin = nil
	}
}

// pump decodes results from r into events until the stream ends.
func pump(idx int, r io.Reader, events chan<- event) {
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rm resultMsg
		if err := dec.Decode(&rm); err != nil {
			if err == io.EOF {
				events <- event{worker: idx, closed: true}
			} else {
				events <- event{worker: idx, closed: true, err: err}
			}
			return
		}
		events <- event{worker: idx, res: rm}
	}
}

// startProcWorker launches argv as a worker process wired up over its
// stdin/stdout; stderr passes through so a worker panic is visible.
func startProcWorker(idx int, argv []string, hello helloMsg, events chan<- event) (*workerConn, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: start worker %v: %w", argv, err)
	}
	bw := bufio.NewWriter(stdin)
	wc := &workerConn{enc: json.NewEncoder(bw), bw: bw, stdin: stdin, wait: cmd.Wait}
	if err := wc.send(hello); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("fleet: hello to worker: %w", err)
	}
	go pump(idx, stdout, events)
	return wc, nil
}

// startInprocWorker runs Serve in a goroutine over in-memory pipes. The
// protocol is still fully exercised — in-process is an execution detail,
// not a separate code path.
func startInprocWorker(idx int, sc explore.Scenario, hello helloMsg, events chan<- event) (*workerConn, error) {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := Serve(jobR, resW, func(name string) (explore.Scenario, bool) {
			return sc, name == sc.Name
		})
		_ = resW.CloseWithError(err) // nil err → clean EOF for the pump
		done <- err
	}()
	bw := bufio.NewWriter(jobW)
	wc := &workerConn{enc: json.NewEncoder(bw), bw: bw, stdin: jobW, wait: func() error { return <-done }}
	if err := wc.send(hello); err != nil {
		return nil, fmt.Errorf("fleet: hello to in-process worker: %w", err)
	}
	go pump(idx, resR, events)
	return wc, nil
}
