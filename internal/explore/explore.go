package explore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// Scenario is a concurrency test: Setup builds the world (spawns runtime
// threads, registers fault victims, invariant checks, and the threads
// that must finish) on a fresh deterministic runtime. Setup runs on the
// driver goroutine while no runtime thread is executing; it is plain Go —
// it may Spawn threads and construct abstractions but must not Sync.
//
// For deterministic runs, Setup itself must be deterministic: spawn
// threads and custodians in a fixed order, and avoid External helpers
// whose completion races the driver (queued deliveries are only
// deterministic once Complete has been called).
type Scenario struct {
	Name  string
	Desc  string
	Setup func(*Sim)
}

// Sim is the scenario-facing handle passed to Setup.
type Sim struct {
	// RT is the deterministic runtime the scenario runs on.
	RT *core.Runtime

	victims    []*core.Thread
	custodians []*core.Custodian
	mustFinish []*core.Thread
	checks     []func() error
	allowed    map[ActionKind]bool
	maxFaults  int
}

// Victim registers a thread as a fault-injection target: the explorer may
// kill, suspend, resume, or break it at any decision point. Victims
// should be disjoint from MustFinish threads.
func (s *Sim) Victim(th *core.Thread) { s.victims = append(s.victims, th) }

// VictimCustodian registers a custodian the explorer may shut down.
func (s *Sim) VictimCustodian(c *core.Custodian) { s.custodians = append(s.custodians, c) }

// MustFinish registers a thread the scenario requires to terminate: the
// run passes only once every such thread is done, and a run in which one
// of them can never proceed again is reported as Stuck (a wedge).
func (s *Sim) MustFinish(th *core.Thread) { s.mustFinish = append(s.mustFinish, th) }

// Check registers an invariant evaluated when all MustFinish threads are
// done (or, for a scenario with none, when the world goes quiescent). A
// non-nil error fails the run.
func (s *Sim) Check(fn func() error) { s.checks = append(s.checks, fn) }

// RestrictFaults limits injection to the given fault kinds. By default
// every fault kind is available; scenarios whose invariants only hold
// under some faults (e.g. a rendezvous where suspending one partner
// legitimately starves another) restrict the menu.
func (s *Sim) RestrictFaults(kinds ...ActionKind) {
	s.allowed = make(map[ActionKind]bool, len(kinds))
	for _, k := range kinds {
		s.allowed[k] = true
	}
}

// LimitFaults caps the faults injected per run below Options.FaultBudget.
// A scenario whose invariant survives any single fault but not arbitrary
// combinations (e.g. killing both of the threads that keep a rendezvous
// serviceable) sets this to 1.
func (s *Sim) LimitFaults(n int) { s.maxFaults = n }

func (s *Sim) faultAllowed(k ActionKind) bool {
	if s.allowed == nil {
		return true
	}
	return s.allowed[k]
}

// Status classifies a run.
type Status int

const (
	// StatusPass: every MustFinish thread finished and all checks held.
	StatusPass Status = iota
	// StatusFail: a check reported an invariant violation.
	StatusFail
	// StatusStuck: some MustFinish thread is not done, no progress step is
	// available, and no fault is left to inject — the wedge the kill-safe
	// abstractions exist to prevent.
	StatusStuck
	// StatusBudget: the step budget ran out first; inconclusive.
	StatusBudget
	// StatusError: the harness itself failed (watchdog, replay divergence).
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusPass:
		return "pass"
	case StatusFail:
		return "fail"
	case StatusStuck:
		return "stuck"
	case StatusBudget:
		return "budget"
	case StatusError:
		return "error"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Options bound a run and configure a sweep. The per-run fields
// (MaxSteps, FaultBudget, StepTimeout, FaultProb, Instrument, Lenient)
// apply to every schedule; the sweep fields (Seeds, BaseSeed, Budget,
// Strategy, Workers) drive Explore.
type Options struct {
	// MaxSteps caps the number of decisions before the run is declared
	// Budget. Default 500.
	MaxSteps int
	// FaultBudget caps how many faults may be injected. Default 2.
	FaultBudget int
	// StepTimeout is the real-time watchdog on each settle/grant; it only
	// turns a harness hang into StatusError, never affects decisions.
	// Default 10s.
	StepTimeout time.Duration
	// FaultProb is the per-decision fault probability for random
	// exploration. Default 0.25.
	FaultProb float64
	// Instrument, if non-nil, is a passive instrumentation (e.g. an
	// *obs.Obs with its flight recorder) teed alongside the explorer's
	// deterministic controller: every tap reaches both, so a systematic
	// run can be observed with the same vocabulary as a live server.
	Instrument core.Instrumentation
	// Lenient makes Replay tolerate decisions that are no longer
	// available (they are skipped, and a trailing deterministic
	// fallback keeps the run moving). The shrinker and flight-recorder
	// forensics replay leniently; regression pins replay strictly.
	Lenient bool

	// Seeds caps the number of schedules an Explore sweep runs.
	// Default 100.
	Seeds int
	// BaseSeed is the first fresh seed (fresh schedules use BaseSeed,
	// BaseSeed+1, …). Default 1.
	BaseSeed int64
	// Budget, when positive, is a wall-clock cap on the sweep: no new
	// schedule starts after it expires. 0 means seeds-only.
	Budget time.Duration
	// Strategy selects uniform seed sweeping or coverage-guided
	// exploration. Default StrategyUniform.
	Strategy Strategy
	// Workers is the number of in-process worker goroutines Explore
	// runs schedules on (each schedule still executes sequentially on
	// its own deterministic runtime). Default 1. Process-level workers
	// are the fleet package's job.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 500
	}
	if o.FaultBudget == 0 {
		o.FaultBudget = 2
	}
	if o.StepTimeout == 0 {
		o.StepTimeout = 10 * time.Second
	}
	if o.FaultProb == 0 {
		o.FaultProb = 0.25
	}
	if o.Seeds == 0 {
		o.Seeds = 100
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Outcome is the result of one run.
type Outcome struct {
	Status Status
	// Err holds the failed check (StatusFail) or harness error
	// (StatusError).
	Err error
	// Trace is the executed decision sequence; feeding it back through a
	// strict replay reproduces the run bit-for-bit.
	Trace *Trace
	// Steps and Faults count decisions and injected faults.
	Steps  int
	Faults int
}

// Failing is the default failure predicate: a wedge or an invariant
// violation (or a harness error). Budget runs are inconclusive, not
// failures.
func (o *Outcome) Failing() bool {
	return o.Status == StatusStuck || o.Status == StatusFail || o.Status == StatusError
}

// RunOnce executes one schedule of sc driven by p and returns its
// outcome. seed is recorded in the trace for provenance.
func RunOnce(sc Scenario, p Picker, seed int64, opts Options) *Outcome {
	opts = opts.withDefaults()
	ctl := newController()
	rt := core.NewRuntime()
	rt.SetInstrumentation(core.TeeInstrumentation(ctl, opts.Instrument))
	sim := &Sim{RT: rt}
	o := &Outcome{Trace: &Trace{Scenario: sc.Name, Seed: seed}}
	defer func() {
		// Teardown: let every parked thread run free so Shutdown can kill
		// and reap the world without waiting for grants.
		ctl.release()
		rt.Shutdown()
	}()
	sc.Setup(sim)
	budget := opts.FaultBudget
	if sim.maxFaults > 0 && sim.maxFaults < budget {
		budget = sim.maxFaults
	}

	record := func(a Action) {
		o.Trace.Actions = append(o.Trace.Actions, a)
		o.Steps++
		if a.Fault() {
			o.Faults++
		}
	}
	finish := func() *Outcome {
		for _, chk := range sim.checks {
			if err := chk(); err != nil {
				o.Status = StatusFail
				o.Err = err
				return o
			}
		}
		o.Status = StatusPass
		return o
	}

	for step := 0; ; step++ {
		if err := ctl.settle(opts.StepTimeout); err != nil {
			o.Status = StatusError
			o.Err = err
			return o
		}
		if len(sim.mustFinish) > 0 {
			done := true
			for _, th := range sim.mustFinish {
				if !th.Done() {
					done = false
					break
				}
			}
			if done {
				return finish()
			}
		}

		// Progress steps: grants to threads parked at a safe point (a
		// suspended thread is not grantable — unless killed, in which case
		// its one remaining step is the unwind), plus queued External
		// deliveries and virtual-clock advances.
		var progress []Action
		for _, th := range ctl.runnable() {
			if th.Suspended() && !th.Killed() {
				continue
			}
			progress = append(progress, Action{Kind: ActRun, Thread: th.ID()})
		}
		if rt.PendingDeliveries() > 0 {
			progress = append(progress, Action{Kind: ActDeliver})
		}
		if rt.PendingAlarms() > 0 {
			progress = append(progress, Action{Kind: ActClock})
		}

		var faults []Action
		if o.Faults < budget {
			for _, th := range sim.victims {
				if th.Done() {
					continue
				}
				if !th.Killed() && sim.faultAllowed(ActKill) {
					faults = append(faults, Action{Kind: ActKill, Thread: th.ID()})
				}
				if !th.Killed() && !th.Suspended() && sim.faultAllowed(ActSuspend) {
					faults = append(faults, Action{Kind: ActSuspend, Thread: th.ID()})
				}
				if !th.Killed() && th.Suspended() && sim.faultAllowed(ActResume) {
					faults = append(faults, Action{Kind: ActResume, Thread: th.ID()})
				}
				if !th.Killed() && sim.faultAllowed(ActBreak) {
					faults = append(faults, Action{Kind: ActBreak, Thread: th.ID()})
				}
			}
			for i, c := range sim.custodians {
				if !c.Dead() && sim.faultAllowed(ActShutdown) {
					faults = append(faults, Action{Kind: ActShutdown, Cust: i})
				}
			}
		}

		if len(progress) == 0 && len(faults) == 0 {
			if len(sim.mustFinish) == 0 {
				return finish() // quiescence is this scenario's finish line
			}
			o.Status = StatusStuck
			return o
		}
		if step >= opts.MaxSteps {
			o.Status = StatusBudget
			return o
		}

		a, err := p.Pick(step, progress, faults)
		if err != nil {
			o.Status = StatusError
			o.Err = err
			return o
		}
		switch a.Kind {
		case ActRun:
			th := ctl.thread(a.Thread)
			if th == nil {
				o.Status = StatusError
				o.Err = fmt.Errorf("explore: picked unknown thread %d", a.Thread)
				return o
			}
			if err := ctl.grant(th, opts.StepTimeout); err != nil {
				o.Status = StatusError
				o.Err = err
				return o
			}
		case ActDeliver:
			rt.DeliverNextExternal()
		case ActClock:
			rt.AdvanceToNextAlarm()
		case ActKill:
			if th := ctl.thread(a.Thread); th != nil {
				th.Kill()
			}
		case ActSuspend:
			if th := ctl.thread(a.Thread); th != nil {
				th.Suspend()
			}
		case ActResume:
			if th := ctl.thread(a.Thread); th != nil {
				core.Resume(th)
			}
		case ActBreak:
			if th := ctl.thread(a.Thread); th != nil {
				th.Break()
			}
		case ActShutdown:
			if a.Cust >= 0 && a.Cust < len(sim.custodians) {
				sim.custodians[a.Cust].Shutdown()
			}
		default:
			o.Status = StatusError
			o.Err = fmt.Errorf("explore: picked unknown action kind %d", a.Kind)
			return o
		}
		record(a)
	}
}

// Replay re-executes a recorded trace. By default the replay is
// strict: any divergence from the recorded decisions is a StatusError
// outcome. With opts.Lenient, unavailable decisions are skipped instead
// — the shrinker and flight-recorder forensics are the customers.
func Replay(sc Scenario, tr *Trace, opts Options) *Outcome {
	p := NewReplayPicker(tr)
	p.Lenient = opts.Lenient
	return RunOnce(sc, p, tr.Seed, opts)
}

// Report aggregates an exploration sweep.
type Report struct {
	Scenario  string
	Schedules int
	Steps     int
	Faults    int
	Outcomes  map[Status]int
	// Distinct counts the distinct schedule footprints (Footprint
	// hashes) the sweep observed — the "distinct interleavings" a
	// strategy is buying with its budget.
	Distinct int
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
	// FirstFailure is the first failing outcome in job order (nil if
	// every schedule passed) and FirstFailureSeed the seed that
	// produced it.
	FirstFailure     *Outcome
	FirstFailureSeed int64
}

// outcome rehydrates a JobResult into an Outcome (Err becomes opaque).
func (r JobResult) outcome() *Outcome {
	o := &Outcome{Status: r.Status, Trace: r.Trace, Steps: r.Steps, Faults: r.Faults}
	if r.Err != "" {
		o.Err = fmt.Errorf("%s", r.Err)
	}
	return o
}

// Explore sweeps schedules of sc as configured by opts — Seeds
// schedules from BaseSeed under the chosen Strategy, across Workers
// in-process workers, within Budget — and stops at the first failing
// outcome (in job order), which carries the replayable trace. Results
// are digested in job order, so a sweep is reproducible for a given
// Options regardless of worker count.
func Explore(sc Scenario, opts Options) *Report {
	opts = opts.withDefaults()
	d := NewDriver(opts)
	rep := &Report{Scenario: sc.Name, Outcomes: make(map[Status]int)}

	jobs := make(chan Job, opts.Workers)
	results := make(chan JobResult, opts.Workers)
	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- j.Run(sc, opts)
			}
		}()
	}

	pending := make(map[int64]JobResult)
	var nextObs int64
	inflight := 0
	for {
		for inflight < opts.Workers {
			j, ok := d.Next()
			if !ok {
				break
			}
			jobs <- j
			inflight++
		}
		if inflight == 0 {
			break
		}
		res := <-results
		inflight--
		pending[res.ID] = res
		for {
			r, ok := pending[nextObs]
			if !ok {
				break
			}
			delete(pending, nextObs)
			nextObs++
			d.Observe(r)
			rep.Schedules++
			rep.Steps += r.Steps
			rep.Faults += r.Faults
			rep.Outcomes[r.Status]++
			if rep.FirstFailure == nil && r.Failing() {
				rep.FirstFailure = r.outcome()
				if r.Trace != nil {
					rep.FirstFailureSeed = r.Trace.Seed
				}
				d.Stop()
			}
		}
		if rep.FirstFailure != nil && inflight == 0 {
			break
		}
	}
	close(jobs)
	wg.Wait()
	rep.Distinct = d.Distinct()
	rep.Elapsed = d.Elapsed()
	return rep
}
