package doc_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/doc"
)

func withRuntime(t *testing.T, fn func(*core.Runtime, *core.Thread)) {
	t.Helper()
	rt := core.NewRuntime()
	defer rt.Shutdown()
	if err := rt.Run(func(th *core.Thread) { fn(rt, th) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEditing(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		d := doc.New(th)
		if _, err := d.Append(th, "one"); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Append(th, "three"); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := d.Insert(th, 1, "two"); err != nil || !ok {
			t.Fatalf("insert: ok=%v err=%v", ok, err)
		}
		v, lines, err := d.Snapshot(th)
		if err != nil {
			t.Fatal(err)
		}
		if v != 3 {
			t.Fatalf("version = %d, want 3", v)
		}
		want := []string{"one", "two", "three"}
		for i := range want {
			if lines[i] != want[i] {
				t.Fatalf("lines = %v", lines)
			}
		}
		if _, ok, err := d.Delete(th, 1); err != nil || !ok {
			t.Fatalf("delete: ok=%v err=%v", ok, err)
		}
		if _, lines, _ := d.Snapshot(th); len(lines) != 2 {
			t.Fatalf("after delete: %v", lines)
		}
	})
}

func TestOutOfRangeEdits(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		d := doc.New(th)
		if _, ok, err := d.Insert(th, 5, "x"); err != nil || ok {
			t.Fatalf("insert out of range: ok=%v err=%v", ok, err)
		}
		if _, ok, err := d.Delete(th, 0); err != nil || ok {
			t.Fatalf("delete out of range: ok=%v err=%v", ok, err)
		}
	})
}

// TestSharedDocumentSurvivesEitherOwner is the paper's Figure 4 claim: the
// document is created by one session, promoted by the other, survives the
// termination of either, and dies with both.
func TestSharedDocumentSurvivesEitherOwner(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *doc.Document, 1)
		th.WithCustodian(c1, func() {
			th.Spawn("servlet-1", func(x *core.Thread) {
				d := doc.New(x)
				if _, err := d.Append(x, "from servlet 1"); err != nil {
					t.Errorf("append: %v", err)
				}
				share <- d
				_ = core.Sleep(x, time.Hour)
			})
		})
		d := <-share

		used := make(chan struct{})
		edits := make(chan error, 16)
		th.WithCustodian(c2, func() {
			th.Spawn("servlet-2", func(x *core.Thread) {
				_, err := d.Append(x, "from servlet 2") // promotes the doc into c2
				edits <- err
				close(used)
				for {
					if err := core.Sleep(x, time.Millisecond); err != nil {
						return
					}
					if _, err := d.Append(x, "more"); err != nil {
						return
					}
				}
			})
		})
		<-used
		if err := <-edits; err != nil {
			t.Fatalf("servlet 2 first edit: %v", err)
		}

		// Terminate servlet 1; the document keeps serving servlet 2.
		c1.Shutdown()
		if d.Manager().Suspended() {
			t.Fatal("document suspended while a user survives")
		}
		// Servlet 2 keeps editing; verify from a third task that reads.
		if _, lines, err := d.Snapshot(th); err != nil || len(lines) < 2 {
			t.Fatalf("snapshot after c1 death: %v, %v", lines, err)
		}

		// Now terminate servlet 2 as well. The main thread's snapshot
		// guard has yoked the manager to the root custodian via this
		// test's reads, so to observe "dies with both" we must not have
		// read from the main task... (see TestDocumentDiesWithBothOwners).
		c2.Shutdown()
	})
}

// TestDocumentDiesWithBothOwners verifies the no-conspiracy half: when
// every sharing task is terminated, the document's manager is suspended
// and reapable — it gained no more privilege than its users' sum.
func TestDocumentDiesWithBothOwners(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		c1 := core.NewCustodian(rt.RootCustodian())
		c2 := core.NewCustodian(rt.RootCustodian())
		share := make(chan *doc.Document, 1)
		th.WithCustodian(c1, func() {
			th.Spawn("servlet-1", func(x *core.Thread) {
				d := doc.New(x)
				share <- d
				_ = core.Sleep(x, time.Hour)
			})
		})
		d := <-share
		used := make(chan struct{})
		th.WithCustodian(c2, func() {
			th.Spawn("servlet-2", func(x *core.Thread) {
				if _, err := d.Append(x, "hi"); err == nil {
					close(used)
				}
				_ = core.Sleep(x, time.Hour)
			})
		})
		<-used
		c1.Shutdown()
		c2.Shutdown()
		if !d.Manager().Suspended() {
			t.Fatal("document manager runnable after both owners died")
		}
		rt.TerminateCondemned()
		deadline := time.Now().Add(5 * time.Second)
		for !d.Manager().Done() {
			if time.Now().After(deadline) {
				t.Fatal("document manager not reaped")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

func TestConcurrentEditors(t *testing.T) {
	withRuntime(t, func(rt *core.Runtime, th *core.Thread) {
		d := doc.New(th)
		const editors, edits = 5, 20
		done := make(chan struct{}, editors)
		for e := 0; e < editors; e++ {
			th.Spawn("editor", func(x *core.Thread) {
				for i := 0; i < edits; i++ {
					if _, err := d.Append(x, "line"); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				}
				done <- struct{}{}
			})
		}
		for e := 0; e < editors; e++ {
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("editors stalled")
			}
		}
		v, lines, err := d.Snapshot(th)
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != editors*edits || v != editors*edits {
			t.Fatalf("len=%d version=%d, want %d", len(lines), v, editors*edits)
		}
	})
}
