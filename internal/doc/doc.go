// Package doc implements the collaborative shared document from the
// paper's motivating example (Section 2): two servlet sessions discover
// each other and share a document whose implementation is specific to the
// pair. The sessions trust the document implementation but not each other,
// because the server may terminate either session at any time — so the
// document must be kill-safe.
//
// The document is the paper's Figure 4 "gray box": a manager thread
// initially created as a sub-task of whichever session creates it, and
// promoted by every other user's operation guard (ResumeVia) so that it
// survives as long as any user — and no longer.
package doc

import (
	"repro/abstractions/rpcsvc"
	"repro/internal/core"
)

// Document is a kill-safe, ordered sequence of text lines with optimistic
// versioning.
type Document struct {
	svc *rpcsvc.Service[request, response]
}

type opKind int

const (
	opAppend opKind = iota
	opInsert
	opDelete
	opSnapshot
)

type request struct {
	kind opKind
	pos  int
	line string
}

type response struct {
	version int
	lines   []string
	ok      bool
}

// state is owned exclusively by the service's manager thread.
type state struct {
	version int
	lines   []string
}

// New creates a document whose manager runs under the creating thread's
// current custodian. Share the *Document value with other tasks; their
// first operation promotes the manager into their custodian.
func New(th *core.Thread) *Document {
	st := &state{}
	handle := func(_ *core.Thread, r request) response {
		switch r.kind {
		case opAppend:
			st.lines = append(st.lines, r.line)
			st.version++
			return response{version: st.version, ok: true}
		case opInsert:
			if r.pos < 0 || r.pos > len(st.lines) {
				return response{version: st.version}
			}
			st.lines = append(st.lines[:r.pos], append([]string{r.line}, st.lines[r.pos:]...)...)
			st.version++
			return response{version: st.version, ok: true}
		case opDelete:
			if r.pos < 0 || r.pos >= len(st.lines) {
				return response{version: st.version}
			}
			st.lines = append(st.lines[:r.pos], st.lines[r.pos+1:]...)
			st.version++
			return response{version: st.version, ok: true}
		case opSnapshot:
			out := make([]string, len(st.lines))
			copy(out, st.lines)
			return response{version: st.version, lines: out, ok: true}
		}
		return response{}
	}
	return &Document{svc: rpcsvc.New(th, handle)}
}

// Manager exposes the document's manager thread for tests.
func (d *Document) Manager() *core.Thread { return d.svc.Manager() }

// Append adds a line at the end and returns the new version.
func (d *Document) Append(th *core.Thread, line string) (int, error) {
	r, err := d.svc.Call(th, request{kind: opAppend, line: line})
	return r.version, err
}

// Insert adds a line at position pos; ok is false if pos is out of range.
func (d *Document) Insert(th *core.Thread, pos int, line string) (int, bool, error) {
	r, err := d.svc.Call(th, request{kind: opInsert, pos: pos, line: line})
	return r.version, r.ok, err
}

// Delete removes the line at pos; ok is false if pos is out of range.
func (d *Document) Delete(th *core.Thread, pos int) (int, bool, error) {
	r, err := d.svc.Call(th, request{kind: opDelete, pos: pos})
	return r.version, r.ok, err
}

// Snapshot returns the current version and a copy of the lines.
func (d *Document) Snapshot(th *core.Thread) (int, []string, error) {
	r, err := d.svc.Call(th, request{kind: opSnapshot})
	return r.version, r.lines, err
}
