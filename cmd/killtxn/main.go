// Command killtxn sweeps the kill-safe transactional KV store
// (abstractions/kvtxn) across a contention grid — cores × Zipf theta ×
// read-rate × kill-rate × commit-strategy — with a killer thread
// terminating workers mid-transaction at the configured rate, and emits
// the results as BENCH_txn.json.
//
// Every cell runs a sum-preserving transfer workload (plus read-only
// transactions at the read-rate), so the store's kill-safety claims are
// checked as oracles on every row: after the storm the store must audit
// clean (wedged_locks == 0: no stuck lock, parked waiter, prepare stash,
// or leaked registry entry) and the account sum must be exact
// (half_commits == 0: no kill landed between the two halves of a
// transfer). A hot-key phase knob rotates which keys are hot mid-run, so
// the lock tables churn instead of reaching a steady state.
//
// The process exits nonzero if any cell violates an oracle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
)

type cellConfig struct {
	strategy kvtxn.Strategy
	cores    int
	theta    float64
	readRate float64
	killRate int // worker kills per second; 0 = no killer
}

type cellRow struct {
	Strategy      string  `json:"strategy"`
	Cores         int     `json:"cores"`
	Theta         float64 `json:"theta"`
	ReadRate      float64 `json:"read_rate"`
	KillRate      int     `json:"kill_rate"`
	DurationMs    int64   `json:"duration_ms"`
	Txns          int64   `json:"txns"`
	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	KillAborts    int64   `json:"kill_aborts"`
	Kills         int     `json:"kills"`
	ThroughputTPS float64 `json:"throughput_tps"` // committed txns per second
	WedgedLocks   int     `json:"wedged_locks"`   // audit residue after quiesce
	SumDelta      int     `json:"sum_delta"`      // final sum minus expected
	HalfCommits   int     `json:"half_commits"`   // 1 if sum_delta != 0
}

type report struct {
	Suite       string            `json:"suite"`
	Description string            `json:"description"`
	Recorded    string            `json:"recorded"`
	Environment map[string]any    `json:"environment"`
	Cells       []cellRow         `json:"cells"`
}

// zipfGen is the YCSB-style Zipfian key-rank generator: rank 0 is the
// hottest key, with skew theta in [0, 1). theta == 0 is uniform.
type zipfGen struct {
	n                  int
	theta              float64
	alpha, zetan, eta  float64
	half               float64
}

func newZipf(n int, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	if theta == 0 {
		return z
	}
	zeta := func(k int) float64 {
		s := 0.0
		for i := 1; i <= k; i++ {
			s += 1 / math.Pow(float64(i), theta)
		}
		return s
	}
	z.zetan = zeta(n)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2)/z.zetan)
	z.half = math.Pow(0.5, theta)
	return z
}

func (z *zipfGen) draw(r *rand.Rand) int {
	if z.theta == 0 {
		return r.Intn(z.n)
	}
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}

func main() {
	var (
		out      = flag.String("out", "BENCH_txn.json", "output file")
		dur      = flag.Duration("dur", 250*time.Millisecond, "per-cell run duration")
		quick    = flag.Bool("quick", false, "run a single smoke cell instead of the full sweep")
		nKeys    = flag.Int("keys", 48, "accounts per cell")
		nWorkers = flag.Int("workers", 8, "worker threads per cell")
		hotPhase = flag.Duration("hotphase", 50*time.Millisecond, "hot-key rotation period (0 disables)")
		seed     = flag.Int64("seed", 1, "root rng seed")
	)
	flag.Parse()

	cells := sweepGrid()
	if *quick {
		cells = []cellConfig{{strategy: kvtxn.Locking, cores: 1, theta: 0.9, readRate: 0.5, killRate: 50}}
	}

	prevProcs := goruntime.GOMAXPROCS(0)
	defer goruntime.GOMAXPROCS(prevProcs)

	rows := make([]cellRow, 0, len(cells))
	bad := 0
	for i, c := range cells {
		row := runCell(c, *dur, *nKeys, *nWorkers, *hotPhase, *seed+int64(i))
		rows = append(rows, row)
		status := "ok"
		if row.WedgedLocks != 0 || row.HalfCommits != 0 {
			status = "INTEGRITY VIOLATION"
			bad++
		}
		fmt.Fprintf(os.Stderr,
			"[%2d/%d] %-4s cores=%d theta=%.1f read=%.1f kill=%d: %6.0f tps commits=%d aborts=%d killAborts=%d kills=%d wedged=%d sumΔ=%d %s\n",
			i+1, len(cells), row.Strategy, row.Cores, row.Theta, row.ReadRate, row.KillRate,
			row.ThroughputTPS, row.Commits, row.Aborts, row.KillAborts, row.Kills,
			row.WedgedLocks, row.SumDelta, status)
	}
	goruntime.GOMAXPROCS(prevProcs)

	rep := report{
		Suite: "kvtxn-contention",
		Description: "E22: kill-safe transactional KV store (abstractions/kvtxn) contention sweep. One cell = a fresh store and runtime running sum-preserving transfer transactions (2 keys drawn from a Zipfian over the account space, hot range rotated every hotphase) plus read-only transactions at read_rate, while a killer terminates worker threads mid-transaction at kill_rate per second and spawns replacements. Oracles per cell after quiescence: wedged_locks (audit residue: stuck locks, parked waiters, prepare stashes, leaked registry entries) and half_commits (account sum drift) must both be zero — a kill either commits a whole transfer or none of it.",
		Recorded:    time.Now().Format("2006-01-02"),
		Environment: map[string]any{
			"goos":       goruntime.GOOS,
			"goarch":     goruntime.GOARCH,
			"cpus":       goruntime.NumCPU(),
			"go":         goruntime.Version(),
			"command":    fmt.Sprintf("go run ./cmd/killtxn -dur %s -keys %d -workers %d -hotphase %s (quick=%v)", *dur, *nKeys, *nWorkers, *hotPhase, *quick),
		},
		Cells: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%d cells -> %s\n", len(rows), *out)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d cells violated kill-safety oracles\n", bad)
		os.Exit(1)
	}
}

func sweepGrid() []cellConfig {
	coresAxis := []int{1}
	if n := goruntime.NumCPU(); n > 1 {
		coresAxis = append(coresAxis, n)
	}
	var cells []cellConfig
	for _, strat := range []kvtxn.Strategy{kvtxn.Locking, kvtxn.OCC} {
		for _, cores := range coresAxis {
			for _, theta := range []float64{0, 0.6, 0.9} {
				for _, readRate := range []float64{0, 0.5} {
					for _, killRate := range []int{0, 50} {
						cells = append(cells, cellConfig{
							strategy: strat, cores: cores, theta: theta,
							readRate: readRate, killRate: killRate,
						})
					}
				}
			}
		}
	}
	return cells
}

const initialBalance = 1000

func runCell(cfg cellConfig, dur time.Duration, nKeys, nWorkers int, hotPhase time.Duration, seed int64) cellRow {
	goruntime.GOMAXPROCS(cfg.cores)
	row := cellRow{
		Strategy:   cfg.strategy.String(),
		Cores:      cfg.cores,
		Theta:      cfg.theta,
		ReadRate:   cfg.readRate,
		KillRate:   cfg.killRate,
		DurationMs: dur.Milliseconds(),
	}
	root := rand.New(rand.NewSource(seed))
	zip := newZipf(nKeys, cfg.theta)

	rt := core.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *core.Thread) {
		s := kvtxn.NewWith(th, kvtxn.Options{
			Strategy: cfg.strategy,
			Shards:   8,
			LockWait: 5 * time.Millisecond,
		})
		keys := make([]string, nKeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("acct%04d", i)
			if err := s.Put(th, keys[i], itoa(initialBalance)); err != nil {
				panic(fmt.Sprintf("seed put: %v", err))
			}
		}

		var (
			stop  atomic.Bool
			phase atomic.Int64
			txns  atomic.Int64
			mu    sync.Mutex
			live  []*core.Thread // current workers, killer victim pool
			all   []*core.Thread // every thread ever spawned, for the final wait
		)
		pickKey := func(r *rand.Rand) string {
			return keys[(zip.draw(r)+int(phase.Load()))%nKeys]
		}
		workerBody := func(wseed int64) func(*core.Thread) {
			return func(x *core.Thread) {
				r := rand.New(rand.NewSource(wseed))
				for !stop.Load() {
					txns.Add(1)
					if r.Float64() < cfg.readRate {
						readOnly(x, s, pickKey(r), pickKey(r))
						continue
					}
					a, b := pickKey(r), pickKey(r)
					if a == b {
						continue
					}
					transfer(x, s, a, b, 1+r.Intn(5))
				}
			}
		}
		spawnWorker := func(sp *core.Thread) *core.Thread {
			w := sp.Spawn("killtxn-worker", workerBody(root.Int63()))
			return w
		}
		mu.Lock()
		for i := 0; i < nWorkers; i++ {
			w := spawnWorker(th)
			live = append(live, w)
			all = append(all, w)
		}
		mu.Unlock()

		var rotator, killer *core.Thread
		if hotPhase > 0 {
			rotator = th.Spawn("killtxn-rotator", func(x *core.Thread) {
				for !stop.Load() {
					if core.Sleep(x, hotPhase) != nil {
						return
					}
					phase.Add(int64(nKeys / 4))
				}
			})
		}
		kills := 0
		if cfg.killRate > 0 {
			interval := time.Second / time.Duration(cfg.killRate)
			kseed := root.Int63()
			killer = th.Spawn("killtxn-killer", func(x *core.Thread) {
				kr := rand.New(rand.NewSource(kseed))
				for !stop.Load() {
					if core.Sleep(x, interval) != nil {
						return
					}
					mu.Lock()
					if len(live) == 0 {
						mu.Unlock()
						continue
					}
					i := kr.Intn(len(live))
					victim := live[i]
					// Replace the dead worker so throughput pressure holds.
					w := spawnWorker(x)
					live[i] = w
					all = append(all, w)
					kills++
					mu.Unlock()
					victim.Kill()
				}
			})
		}

		deadline := time.Now().Add(dur)
		for time.Now().Before(deadline) {
			_ = core.Sleep(th, 5*time.Millisecond)
		}
		stop.Store(true)
		mu.Lock()
		waitFor := append([]*core.Thread(nil), all...)
		mu.Unlock()
		for _, w := range waitFor {
			_, _ = core.Sync(th, w.DoneEvt())
		}
		if rotator != nil {
			_, _ = core.Sync(th, rotator.DoneEvt())
		}
		if killer != nil {
			_, _ = core.Sync(th, killer.DoneEvt())
		}

		// Quiesce: death-watch aborters may still be reclaiming locks.
		wedged := -1
		quiesceBy := time.Now().Add(10 * time.Second)
		for {
			a, err := s.Audit(th)
			if err != nil {
				break
			}
			wedged = a.HeldLocks + a.WaitingReqs + a.PreparedTxns + a.LiveTxns
			if wedged == 0 || time.Now().After(quiesceBy) {
				break
			}
			_ = core.Sleep(th, time.Millisecond)
		}

		sum := 0
		for _, k := range keys {
			v, found, err := s.Get(th, k)
			if err != nil || !found {
				sum = -1 << 30
				break
			}
			n := 0
			fmt.Sscanf(v, "%d", &n)
			sum += n
		}

		c := s.Counters()
		row.Txns = txns.Load()
		row.Commits = c.Commits
		row.Aborts = c.Aborts
		row.KillAborts = c.KillAborts
		row.Kills = kills
		row.ThroughputTPS = float64(c.Commits) / dur.Seconds()
		row.WedgedLocks = wedged
		row.SumDelta = sum - nKeys*initialBalance
		if row.SumDelta != 0 {
			row.HalfCommits = 1
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cell run: %v\n", err)
		row.WedgedLocks = -1
	}
	return row
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// transfer moves amount from a to b in one transaction; conflicts abort
// cleanly and the worker moves on.
func transfer(x *core.Thread, s *kvtxn.Store, a, b string, amount int) {
	tx, err := s.Begin(x)
	if err != nil {
		return
	}
	av, okA, errA := tx.Get(x, a)
	bv, okB, errB := tx.Get(x, b)
	if errA != nil || errB != nil || !okA || !okB {
		_ = tx.Abort(x)
		return
	}
	var an, bn int
	fmt.Sscanf(av, "%d", &an)
	fmt.Sscanf(bv, "%d", &bn)
	_ = tx.Put(a, itoa(an-amount))
	_ = tx.Put(b, itoa(bn+amount))
	_ = tx.Commit(x)
}

// readOnly reads two keys in one transaction and commits.
func readOnly(x *core.Thread, s *kvtxn.Store, a, b string) {
	tx, err := s.Begin(x)
	if err != nil {
		return
	}
	if _, _, err := tx.Get(x, a); err != nil {
		_ = tx.Abort(x)
		return
	}
	if _, _, err := tx.Get(x, b); err != nil {
		_ = tx.Abort(x)
		return
	}
	_ = tx.Commit(x)
}
