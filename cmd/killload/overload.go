package main

// The overload and live-operations suite (-overload): instead of the
// latency sweep, drive the self-hosted fleet past its capacity and
// record goodput-vs-offered-load curves with and without adaptive
// admission, then roll a live drain across every shard under traffic.
//
// The serving fleet is sized to a known capacity (shards × slots ×
// 1/service-time), and each leg offers a multiple of it as open-loop
// load on fresh connections — the accept queue is where sojourn
// accumulates, which is exactly the signal the admission controller
// watches. Requests carry a class mix (admin status reads, normal work,
// bulk work); goodput counts a request only if it succeeded within the
// SLA, measured from its intended send time.
//
//   - static mode: the seed behavior — a fixed MaxPending cliff. Past
//     capacity the queue holds ~MaxPending conns and every admitted
//     request pays the full queue delay, blowing the SLA: goodput
//     collapses even though the server is "up".
//   - adaptive mode: MaxPending unlimited, AdmitTarget engaged. The
//     controller sheds (bulk outright, normal paced, admin never) to
//     hold queue sojourn near the target, so admitted requests stay
//     inside the SLA and goodput holds near capacity however much is
//     offered.
//
// The drain leg runs keep-alive workers at comfortable load while every
// shard in turn is retired and replaced (DrainShard). Oracles: every
// drain returns nil, no session is killed, no response frame is torn,
// and the workers' error count stays zero — a rolling restart nobody
// noticed.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	goruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

const (
	olShards    = 2
	olSlots     = 2  // MaxConns per shard
	olServiceMs = 20 // /work handler hold time
	// capacity = shards * slots / service = 2*2/20ms = 200 rps
	olCapacityRPS = float64(olShards*olSlots) * 1000 / olServiceMs
	olSLA         = 100 * time.Millisecond
	olAdmitTarget = 5 * time.Millisecond
	olAdmitIvl    = 50 * time.Millisecond
)

type overloadRow struct {
	Mode             string  `json:"mode"` // static | adaptive
	OfferedMult      float64 `json:"offered_x_capacity"`
	OfferedRPS       float64 `json:"offered_rps"`
	AchievedRPS      float64 `json:"achieved_rps"` // responses of any kind
	GoodputRPS       float64 `json:"goodput_rps"`  // 200s within the SLA
	GoodputPct       float64 `json:"goodput_pct"`  // goodput / offered
	AdminGoodputPct  float64 `json:"admin_goodput_pct"`
	NormalGoodputPct float64 `json:"normal_goodput_pct"`
	BulkGoodputPct   float64 `json:"bulk_goodput_pct"`
	P50us            int64   `json:"p50_us"` // successful requests, all classes
	P99us            int64   `json:"p99_us"`
	AdminP99us       int64   `json:"admin_p99_us"`
	ShedClient       int64   `json:"shed_client"`     // 503s observed by clients
	Errors           int64   `json:"errors"`          // dial/read failures, timeouts
	ServerAdmShed    int64   `json:"server_adm_shed"` // admission refusals
	ServerShed       int64   `json:"server_shed"`     // static-cliff refusals
	ServerAdmBulk    int64   `json:"server_adm_shed_bulk"`
	SojournEWMAus    int64   `json:"sojourn_ewma_us"`
	DurationMs       int64   `json:"duration_ms"`
}

type drainRow struct {
	Shards        int      `json:"shards"`
	Requests      int64    `json:"requests"`
	Served        int64    `json:"served"`
	Refused       int64    `json:"refused"` // 503s: shutdown faults, admission
	CleanEOF      int64    `json:"clean_eof"`
	Torn          int64    `json:"torn_frames"`
	TornDetail    []string `json:"torn_detail,omitempty"`
	Errors        int64    `json:"errors"`
	DrainErrors   []string `json:"drain_errors"`
	ShardsDrained int64    `json:"shards_drained"`
	Killed        int64    `json:"killed"`
	Migrated      int64    `json:"migrated"`
	GoodputRPS    float64  `json:"goodput_rps"`
	P99us         int64    `json:"p99_us"`
	DurationMs    int64    `json:"duration_ms"`
}

type overloadReport struct {
	Suite       string         `json:"suite"`
	Description string         `json:"description"`
	Recorded    string         `json:"recorded"`
	Environment map[string]any `json:"environment"`
	CapacityRPS float64        `json:"capacity_rps"`
	SLAms       int64          `json:"sla_ms"`
	Overload    []overloadRow  `json:"overload"`
	Drain       drainRow       `json:"drain"`
}

// startWorkFleet hosts the overload fleet: a /work?ms=N route that holds
// a serving slot for N milliseconds — pure queueing, no store.
func startWorkFleet(cfg netsvc.Config) (*netsvc.ShardedServer, error) {
	return netsvc.ServeSharded(cfg, func(th *core.Thread, shard int) *web.Server {
		ws := web.NewServer(th)
		ws.Handle("/work", func(x *core.Thread, _ *web.Session, req *web.Request) web.Response {
			ms := olServiceMs
			if v, ok := req.Query["ms"]; ok {
				fmt.Sscanf(v, "%d", &ms)
			}
			if err := core.Sleep(x, time.Duration(ms)*time.Millisecond); err != nil {
				return web.Response{Status: 500, Body: "interrupted\n"}
			}
			return web.Response{Status: 200, Body: "done\n"}
		})
		return ws
	})
}

// olResult is one request's outcome, folded by the leg's collector.
type olResult struct {
	class   netsvc.Priority
	us      int64 // completion latency from the intended tick
	outcome int   // 0 ok, 1 shed (503), 2 error
}

// oneOverloadRequest fires one fresh-connection HTTP request and
// classifies the answer.
func oneOverloadRequest(addr, target string, intended time.Time) (int, int64) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 2, 0
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := fmt.Fprintf(c, "GET %s HTTP/1.0\r\n\r\n", target); err != nil {
		return 2, 0
	}
	code, _, err := readHTTPResponse(bufio.NewReader(c))
	us := time.Since(intended).Microseconds()
	switch {
	case err != nil:
		return 2, 0
	case code == 200:
		return 0, us
	case code == 503:
		return 1, us
	default:
		return 2, 0
	}
}

// runOverloadLeg drives one (mode, offered-load) point.
func runOverloadLeg(mode string, mult float64, dur time.Duration, seed int64) (overloadRow, error) {
	offered := mult * olCapacityRPS
	row := overloadRow{
		Mode:        mode,
		OfferedMult: mult,
		OfferedRPS:  offered,
		DurationMs:  dur.Milliseconds(),
	}
	cfg := netsvc.Config{
		MaxConns:    olSlots,
		Shards:      olShards,
		IdleTimeout: 30 * time.Second,
		Protocol:    "http",
	}
	if mode == "adaptive" {
		cfg.MaxPending = -1 // no cliff: the controller is the only shedder
		cfg.AdmitTarget = olAdmitTarget
		cfg.AdmitInterval = olAdmitIvl
	} else {
		cfg.MaxPending = 16 // the seed's static cliff, per shard
	}
	m, err := startWorkFleet(cfg)
	if err != nil {
		return row, err
	}
	defer func() { _ = m.Shutdown(2 * time.Second) }()
	addr := m.Addr().String()

	// Collector: per-class tallies and latency histograms.
	type tally struct {
		sent, ok, shed, errs int64
		okInSLA              int64
		h                    hist
	}
	tallies := map[netsvc.Priority]*tally{
		netsvc.ClassAdmin:  {},
		netsvc.ClassNormal: {},
		netsvc.ClassBulk:   {},
	}
	results := make(chan olResult, 1024)
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for r := range results {
			tl := tallies[r.class]
			switch r.outcome {
			case 0:
				tl.ok++
				tl.h.add(r.us)
				if r.us <= olSLA.Microseconds() {
					tl.okInSLA++
				}
			case 1:
				tl.shed++
			default:
				tl.errs++
			}
		}
	}()

	// Open-loop schedule: every interval one request launches, whatever
	// happened to the previous ones. The class mix is fixed: 10% admin
	// status reads, 60% normal work, 30% bulk work.
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / offered)
	sem := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	start := time.Now()
	stopAt := start.Add(dur)
	next := start
	for next.Before(stopAt) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		intended := next
		next = next.Add(interval)
		var class netsvc.Priority
		var target string
		switch p := rng.Float64(); {
		case p < 0.10:
			class, target = netsvc.ClassAdmin, "/debug/killsafe/stats"
		case p < 0.70:
			class, target = netsvc.ClassNormal, fmt.Sprintf("/work?ms=%d", olServiceMs)
		default:
			class, target = netsvc.ClassBulk, fmt.Sprintf("/work?ms=%d&class=bulk", olServiceMs)
		}
		tallies[class].sent++
		sem <- struct{}{}
		wg.Add(1)
		go func(class netsvc.Priority, target string, intended time.Time) {
			defer func() { <-sem; wg.Done() }()
			outcome, us := oneOverloadRequest(addr, target, intended)
			results <- olResult{class: class, us: us, outcome: outcome}
		}(class, target, intended)
	}
	wg.Wait()
	close(results)
	<-collectDone
	elapsed := time.Since(start)

	st := m.Stats()
	var all hist
	var sent, ok, okSLA, shed, errs int64
	for _, tl := range tallies {
		sent += tl.sent
		ok += tl.ok
		okSLA += tl.okInSLA
		shed += tl.shed
		errs += tl.errs
		all.merge(&tl.h)
	}
	pct := func(tl *tally) float64 {
		if tl.sent == 0 {
			return 100
		}
		return 100 * float64(tl.okInSLA) / float64(tl.sent)
	}
	row.AchievedRPS = float64(ok+shed) / elapsed.Seconds()
	row.GoodputRPS = float64(okSLA) / elapsed.Seconds()
	row.GoodputPct = 100 * float64(okSLA) / float64(sent)
	row.AdminGoodputPct = pct(tallies[netsvc.ClassAdmin])
	row.NormalGoodputPct = pct(tallies[netsvc.ClassNormal])
	row.BulkGoodputPct = pct(tallies[netsvc.ClassBulk])
	row.P50us = all.quantile(0.50)
	row.P99us = all.quantile(0.99)
	row.AdminP99us = tallies[netsvc.ClassAdmin].h.quantile(0.99)
	row.ShedClient = shed
	row.Errors = errs
	row.ServerAdmShed = st.AdmShed
	row.ServerShed = st.Shed
	row.ServerAdmBulk = st.AdmShedBulk
	row.SojournEWMAus = st.SojournEWMAus
	row.DurationMs = elapsed.Milliseconds()
	return row, nil
}

// readHTTPResponseTorn reads one response like readHTTPResponse but also
// reports whether a failure tore a frame: an EOF on a clean response
// boundary (no bytes of a new response consumed) is a clean disconnect;
// any failure after the first byte of a response is a torn frame.
func readHTTPResponseTorn(br *bufio.Reader) (code int, cleanEOF bool, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, line == "" && (err == io.EOF || strings.Contains(err.Error(), "reset")), err
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, false, fmt.Errorf("bad status line %q", line)
	}
	if _, err := fmt.Sscanf(fields[1], "%d", &code); err != nil {
		return 0, false, fmt.Errorf("bad status code in %q", line)
	}
	contentLn := -1
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, false, err // torn mid-headers
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if k, v, ok := strings.Cut(h, ":"); ok && strings.EqualFold(k, "Content-Length") {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &contentLn)
		}
	}
	if contentLn < 0 {
		return 0, false, fmt.Errorf("response without Content-Length")
	}
	if _, err := io.ReadFull(br, make([]byte, contentLn)); err != nil {
		return 0, false, err // torn mid-body
	}
	return code, false, nil
}

// runDrainLeg rolls a live drain across every shard while keep-alive
// workers load the fleet, and checks the zero-harm oracles.
func runDrainLeg(dur, grace time.Duration) (drainRow, error) {
	// Slot headroom is a precondition for zero-downtime drain, same as
	// any rolling restart: while one of the two shards is out, the other
	// must be able to seat every displaced keep-alive connection, so the
	// leg runs 6 workers against 8 slots. (At 100% slot occupancy a
	// displaced conn queues behind seated sessions that never leave —
	// slot occupancy is governed by backpressure, not shedding, because
	// a refusal at the slot queue would necessarily be class-blind: the
	// request, and with it the priority class, cannot be read until a
	// session claims the conn.)
	const (
		shards    = 2
		workers   = 6
		serviceMs = 5
		rps       = 300 // well under the fleet's 8-slot/5ms capacity
	)
	row := drainRow{Shards: shards, DrainErrors: []string{}}
	m, err := startWorkFleet(netsvc.Config{
		MaxConns:    4,
		MaxPending:  -1,
		AdmitTarget: olAdmitTarget,
		Shards:      shards,
		IdleTimeout: 30 * time.Second,
		Protocol:    "http",
	})
	if err != nil {
		return row, err
	}
	defer func() { _ = m.Shutdown(2 * time.Second) }()
	addr := m.Addr().String()

	var requests, served, servedInSLA, refused, cleanEOF, torn, errsN atomic.Int64
	var histMu sync.Mutex
	var h hist
	var tornMu sync.Mutex
	var tornDetail []string
	start := time.Now()
	stopAt := start.Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			interval := time.Duration(workers) * time.Second / rps
			var c net.Conn
			var br *bufio.Reader
			dial := func() bool {
				for time.Now().Before(stopAt) {
					cc, err := net.DialTimeout("tcp", addr, 2*time.Second)
					if err == nil {
						c, br = cc, bufio.NewReader(cc)
						return true
					}
					time.Sleep(5 * time.Millisecond)
				}
				return false
			}
			if !dial() {
				return
			}
			defer func() { _ = c.Close() }()
			connReqs := 0
			next := start.Add(time.Duration(w) * interval / workers)
			for {
				now := time.Now()
				if !now.Before(stopAt) {
					return
				}
				if now.Before(next) {
					time.Sleep(next.Sub(now))
				}
				intended := next
				next = next.Add(interval)
				requests.Add(1)
				connReqs++
				_ = c.SetDeadline(time.Now().Add(5 * time.Second))
				if _, err := fmt.Fprintf(c, "GET /work?ms=%d HTTP/1.1\r\n\r\n", serviceMs); err != nil {
					// Write to a conn the drain already closed: clean, redial.
					cleanEOF.Add(1)
					_ = c.Close()
					if !dial() {
						return
					}
					connReqs = 0
					continue
				}
				code, clean, err := readHTTPResponseTorn(br)
				switch {
				case err != nil && clean:
					cleanEOF.Add(1)
					_ = c.Close()
					if !dial() {
						return
					}
					connReqs = 0
				case err != nil:
					torn.Add(1)
					tornMu.Lock()
					if len(tornDetail) < 8 {
						tornDetail = append(tornDetail,
							fmt.Sprintf("w%d t=%s connReqs=%d: %v", w, time.Since(start).Round(time.Millisecond), connReqs, err))
					}
					tornMu.Unlock()
					_ = c.Close()
					if !dial() {
						return
					}
					connReqs = 0
				case code == 200:
					served.Add(1)
					us := time.Since(intended).Microseconds()
					if us <= olSLA.Microseconds() {
						servedInSLA.Add(1)
					}
					histMu.Lock()
					h.add(us)
					histMu.Unlock()
				case code == 503:
					// Shutdown fault from a draining shard (Connection:
					// close) or an admission shed: refused, not failed.
					refused.Add(1)
					_ = c.Close()
					if !dial() {
						return
					}
					connReqs = 0
				default:
					errsN.Add(1)
				}
			}
		}(w)
	}

	// Let the load establish, then roll the drain across every shard.
	time.Sleep(dur / 5)
	for i := 0; i < shards; i++ {
		if err := m.DrainShard(i, grace); err != nil {
			row.DrainErrors = append(row.DrainErrors, fmt.Sprintf("shard %d: %v", i, err))
		}
		time.Sleep(dur / 10)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := m.Stats()
	row.Requests = requests.Load()
	row.Served = served.Load()
	row.Refused = refused.Load()
	row.CleanEOF = cleanEOF.Load()
	row.Torn = torn.Load()
	row.TornDetail = tornDetail
	row.Errors = errsN.Load()
	row.ShardsDrained = st.ShardsDrained
	row.Killed = st.Killed
	row.Migrated = st.Migrated
	row.GoodputRPS = float64(servedInSLA.Load()) / elapsed.Seconds()
	row.P99us = h.quantile(0.99)
	row.DurationMs = elapsed.Milliseconds()
	return row, nil
}

// runOverloadSuite is the -overload entry point. Returns the number of
// failed oracles/fences (0 = pass).
func runOverloadSuite(out string, dur time.Duration, quick, fenceOn bool, seed int64) int {
	multiples := []float64{0.5, 0.9, 2, 3}
	drainDur := 3 * dur
	if quick {
		multiples = []float64{0.9, 2}
		drainDur = 2 * dur
	}

	var rows []overloadRow
	for _, mode := range []string{"static", "adaptive"} {
		for i, mult := range multiples {
			row, err := runOverloadLeg(mode, mult, dur, seed+int64(i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "killload: overload leg %s %.1fx: %v\n", mode, mult, err)
				os.Exit(1)
			}
			rows = append(rows, row)
			fmt.Fprintf(os.Stderr,
				"[overload] %-8s %.1fx (%4.0f rps): goodput %5.0f rps (%5.1f%%) admin %5.1f%% normal %5.1f%% bulk %5.1f%% p99=%dus adminp99=%dus shed=%d admShed=%d errs=%d\n",
				row.Mode, row.OfferedMult, row.OfferedRPS, row.GoodputRPS, row.GoodputPct,
				row.AdminGoodputPct, row.NormalGoodputPct, row.BulkGoodputPct,
				row.P99us, row.AdminP99us, row.ShedClient, row.ServerAdmShed, row.Errors)
		}
	}

	drain, err := runDrainLeg(drainDur, 2*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "killload: drain leg: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"[drain] %d shards drained under %d reqs: served=%d refused=%d cleanEOF=%d torn=%d errs=%d killed=%d migrated=%d drainErrs=%d\n",
		drain.ShardsDrained, drain.Requests, drain.Served, drain.Refused, drain.CleanEOF,
		drain.Torn, drain.Errors, drain.Killed, drain.Migrated, len(drain.DrainErrors))

	bad := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
		bad++
	}
	// Drain oracles always apply: a rolling drain nobody noticed.
	if len(drain.DrainErrors) > 0 {
		fail("drain errors: %v", drain.DrainErrors)
	}
	if drain.ShardsDrained != int64(drain.Shards) {
		fail("shards_drained = %d, want %d", drain.ShardsDrained, drain.Shards)
	}
	if drain.Torn != 0 {
		fail("%d torn frames during drain: %v", drain.Torn, drain.TornDetail)
	}
	if drain.Killed != 0 {
		fail("%d sessions killed during drain", drain.Killed)
	}
	if drain.Errors != 0 {
		fail("%d request errors during drain", drain.Errors)
	}
	if fenceOn {
		// The CI fence: at 2x capacity with adaptive admission, the
		// admin class rides through (>=95% goodput), bulk shedding is
		// engaged, and total goodput holds within 20% of the adaptive
		// peak across the sweep.
		var peak float64
		var at2x *overloadRow
		for i := range rows {
			if rows[i].Mode != "adaptive" {
				continue
			}
			if rows[i].GoodputRPS > peak {
				peak = rows[i].GoodputRPS
			}
			if rows[i].OfferedMult >= 2 && at2x == nil {
				at2x = &rows[i]
			}
		}
		switch {
		case at2x == nil:
			fail("no adaptive >=2x leg in sweep")
		default:
			if at2x.AdminGoodputPct < 95 {
				fail("admin goodput at 2x = %.1f%%, fence 95%%", at2x.AdminGoodputPct)
			}
			if at2x.ServerAdmBulk == 0 {
				fail("bulk shedding never engaged at 2x capacity")
			}
			if at2x.GoodputRPS < 0.8*peak {
				fail("adaptive goodput at 2x = %.0f rps, fence 80%% of peak %.0f", at2x.GoodputRPS, peak)
			}
		}
	}

	rep := overloadReport{
		Suite:       "wire-overload",
		Description: "E24: adaptive overload control and zero-downtime shard drain. Overload legs self-host the sharded kill-safe server with a fixed-capacity /work route (shards x slots / service time) and offer open-loop load at multiples of capacity on fresh connections, with a 10/60/30 admin/normal/bulk class mix; goodput counts 200s within the SLA measured from intended send time. static mode is the seed's fixed MaxPending cliff; adaptive mode replaces it with the CoDel-style admission controller (target sojourn, per-class policy: admin never shed, normal paced, bulk outright). The drain leg rolls DrainShard across every shard under keep-alive load; oracles: all drains succeed, zero killed sessions, zero torn frames, zero request errors.",
		Recorded:    time.Now().Format("2006-01-02"),
		Environment: map[string]any{
			"goos":       goruntime.GOOS,
			"goarch":     goruntime.GOARCH,
			"cpus":       goruntime.NumCPU(),
			"gomaxprocs": goruntime.GOMAXPROCS(0),
			"go":         goruntime.Version(),
			"command":    fmt.Sprintf("go run ./cmd/killload -overload -dur %s (quick=%v)", dur, quick),
		},
		CapacityRPS: olCapacityRPS,
		SLAms:       olSLA.Milliseconds(),
		Overload:    rows,
		Drain:       drain,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "killload: marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "killload: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%d overload legs + drain -> %s\n", len(rows), out)
	return bad
}
