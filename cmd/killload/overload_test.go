package main

import (
	"os"
	"testing"
	"time"
)

// A short end-to-end pass of the drain leg: rolling drain of every shard
// under keep-alive load with the zero-harm oracles. This is the same
// code path the -overload suite runs, at smoke duration.
func TestDrainLegSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time load leg")
	}
	dur := 1500 * time.Millisecond
	if v := os.Getenv("KILLLOAD_DRAIN_DUR"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			dur = d
		}
	}
	row, err := runDrainLeg(dur, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.DrainErrors) > 0 {
		t.Errorf("drain errors: %v", row.DrainErrors)
	}
	if row.ShardsDrained != int64(row.Shards) {
		t.Errorf("shards_drained = %d, want %d", row.ShardsDrained, row.Shards)
	}
	if row.Torn != 0 {
		t.Errorf("%d torn frames: %v", row.Torn, row.TornDetail)
	}
	if row.Killed != 0 {
		t.Errorf("%d sessions killed", row.Killed)
	}
	if row.Errors != 0 {
		t.Errorf("%d request errors", row.Errors)
	}
	if row.Served == 0 {
		t.Error("no requests served during the drain leg")
	}
}
