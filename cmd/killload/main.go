// Command killload is the wire-protocol latency harness: it self-hosts
// the sharded kill-safe server (internal/netsvc) with the transactional
// KV store mounted behind it, drives it over real TCP with open-loop
// load in both wire protocols (HTTP/1.1 keep-alive and RESP), and
// records per-protocol latency percentiles as BENCH_load.json.
//
// The clients are plain goroutines outside the runtime on purpose: the
// harness measures the serving stack as an external client would see
// it. Load is open-loop — each connection fires on a fixed schedule and
// latency is measured from the *intended* send time, so a stalled
// server accrues the queueing delay it caused instead of silently
// slowing the clients (no coordinated omission).
//
// Legs per protocol:
//
//   - quiescent keep-alive legs at each -conns count (GET/SET mix)
//   - a pipelined leg (-pipeline requests per batch, one write)
//   - a kill-storm leg: MULTI/EXEC pair transfers while a killer
//     terminates random sessions mid-request via the server's own
//     /chaos/kill route, over the wire
//
// The storm leg carries the paper's oracles: every transaction writes a
// disjoint key pair with values summing to 1000, so after quiescence
// the store must audit clean (wedged == 0) and every pair must still
// sum to 1000 (sum_delta == 0) — a session killed mid-EXEC either
// committed both writes or neither. Goodput loss versus the matched
// quiescent leg is reported as goodput_delta_pct and optionally fenced
// (-fence) for CI.
//
// The process exits nonzero if an oracle fails or the fence trips.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/web"
)

const (
	quiescentKeys = 256  // key population for the GET/SET mix
	pairSeed      = 500  // each pair key starts at 500; pair sum must stay 1000
	clientTimeout = 10 * time.Second
)

type legConfig struct {
	protocol string
	conns    int
	pipeline int
	killRate int // kill requests per second; 0 = quiescent
}

type legRow struct {
	Protocol        string  `json:"protocol"`
	Conns           int     `json:"conns"`
	Pipeline        int     `json:"pipeline"`
	KillRate        int     `json:"kill_rate"`
	TargetRPS       float64 `json:"target_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	GoodputRPS      float64 `json:"goodput_rps"`
	Errors          int64   `json:"errors"`
	Kills           int64   `json:"kills"`
	P50us           int64   `json:"p50_us"`
	P99us           int64   `json:"p99_us"`
	P999us          int64   `json:"p999_us"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	DurationMs      int64   `json:"duration_ms"`
	GoodputDeltaPct float64 `json:"goodput_delta_pct"` // storm rows: loss vs matched quiescent leg
	Wedged          int     `json:"wedged"`            // storm rows: audit residue after quiesce
	SumDelta        int     `json:"sum_delta"`         // storm rows: pair-sum drift (half-commits)
}

type report struct {
	Suite       string         `json:"suite"`
	Description string         `json:"description"`
	Recorded    string         `json:"recorded"`
	Environment map[string]any `json:"environment"`
	Legs        []legRow       `json:"legs"`
}

// hist is a log-bucketed latency histogram (16 sub-buckets per octave of
// microseconds), HDR-style: constant memory, bounded relative error.
const histBuckets = 512

type hist struct {
	counts [histBuckets]int64
	n      int64
}

func bucketOf(us int64) int {
	if us < 1 {
		us = 1
	}
	b := int(math.Log2(float64(us)) * 16)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func (h *hist) add(us int64) {
	h.counts[bucketOf(us)]++
	h.n++
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// quantile returns the lower bound of the bucket holding the q-th
// latency sample, in microseconds.
func (h *hist) quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n-1))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return int64(math.Exp2(float64(i) / 16))
		}
	}
	return int64(math.Exp2(float64(histBuckets) / 16))
}

// auditRes is the shard-0 auditor's report after a storm leg.
type auditRes struct {
	wedged   int
	sumDelta int
	err      error
}

// testServer is one leg's self-hosted serving fleet.
type testServer struct {
	m          *netsvc.ShardedServer
	addr       string
	auditCell  *core.External
	auditReply chan auditRes
}

// startServer builds the fleet for one leg: the transactional store on
// shard 0, every shard's servlet reaching it through the cross-runtime
// gateway, a /chaos/kill route for the storm, and a parked auditor
// thread on the store's runtime that the harness triggers after the
// storm to run the kill-safety oracles.
func startServer(shards, maxConns int, protocol string, chaosSeed int64) (*testServer, error) {
	gw := kvtxn.NewGateway()
	ts := &testServer{auditReply: make(chan auditRes, 1)}
	var chaosMu sync.Mutex
	chaosRng := rand.New(rand.NewSource(chaosSeed))
	m, err := netsvc.ServeSharded(netsvc.Config{
		MaxConns:    maxConns,
		MaxPending:  -1, // pure backpressure; shedding would pollute the latency tail
		IdleTimeout: 30 * time.Second,
		Shards:      shards,
		Protocol:    protocol,
	}, func(th *core.Thread, shard int) *web.Server {
		rt := th.Runtime()
		ws := web.NewServer(th)
		if shard == 0 {
			s := kvtxn.NewWith(th, kvtxn.Options{
				Strategy: kvtxn.Locking,
				Shards:   8,
				LockWait: 50 * time.Millisecond,
			})
			gw.Bind(th, s)
			cell := core.NewExternal(rt)
			ts.auditCell = cell
			th.Spawn("killload-auditor", func(x *core.Thread) {
				var v core.Value
				var err error
				for {
					if v, err = core.Sync(x, cell.Evt()); err == nil {
						break
					}
				}
				ts.auditReply <- auditStore(x, s, v.(int))
			})
		}
		kvtxn.Mount(ws, gw, "/kv")
		ws.Handle("/chaos/kill", func(_ *core.Thread, sess *web.Session, _ *web.Request) web.Response {
			var cand []int
			for _, id := range ws.Sessions() {
				if id != sess.ID {
					cand = append(cand, id)
				}
			}
			if len(cand) == 0 {
				return web.Response{Status: 200, Body: "none\n"}
			}
			chaosMu.Lock()
			id := cand[chaosRng.Intn(len(cand))]
			chaosMu.Unlock()
			ws.Terminate(id)
			rt.TerminateCondemned()
			return web.Response{Status: 200, Body: fmt.Sprintf("killed %d\n", id)}
		})
		return ws
	})
	if err != nil {
		return nil, err
	}
	ts.m = m
	ts.addr = m.Addr().String()
	return ts, nil
}

// auditStore runs on the store's runtime after a storm: wait for the
// death-watch aborters to quiesce (audit clean), then read every pair
// back and check the sum invariant.
func auditStore(x *core.Thread, s *kvtxn.Store, pairs int) auditRes {
	deadline := time.Now().Add(10 * time.Second)
	wedged := -1
	for {
		a, err := s.Audit(x)
		if err != nil {
			return auditRes{wedged: -1, err: err}
		}
		wedged = a.HeldLocks + a.WaitingReqs + a.PreparedTxns + a.LiveTxns
		if wedged == 0 || time.Now().After(deadline) {
			break
		}
		if core.Sleep(x, 2*time.Millisecond) != nil {
			return auditRes{wedged: wedged, err: fmt.Errorf("auditor interrupted")}
		}
	}
	sum := 0
	for i := 0; i < 2*pairs; i++ {
		v, found, err := s.Get(x, "p"+strconv.Itoa(i))
		if err != nil || !found {
			return auditRes{wedged: wedged, err: fmt.Errorf("pair key p%d unreadable: found=%v err=%v", i, found, err)}
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return auditRes{wedged: wedged, err: err}
		}
		sum += n
	}
	return auditRes{wedged: wedged, sumDelta: sum - 2*pairs*pairSeed}
}

// readHTTPResponse reads one HTTP response (status code and body) off a
// keep-alive connection.
func readHTTPResponse(br *bufio.Reader) (int, string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, "", fmt.Errorf("bad status line %q", line)
	}
	code, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, "", fmt.Errorf("bad status code in %q", line)
	}
	contentLn := -1
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, "", err
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		if k, v, ok := strings.Cut(h, ":"); ok && strings.EqualFold(k, "Content-Length") {
			contentLn, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	if contentLn < 0 {
		return 0, "", fmt.Errorf("response without Content-Length")
	}
	body := make([]byte, contentLn)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, "", err
	}
	return code, string(body), nil
}

// readRESPReply reads one RESP reply and renders it as a compact string:
// simple lines verbatim, "$"+contents for bulks ("$-1" for null), and
// "*"+first-element for arrays (enough to classify an EXEC result).
func readRESPReply(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return "", fmt.Errorf("empty RESP line")
	}
	switch line[0] {
	case '+', '-', ':':
		return line, nil
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return "", fmt.Errorf("bad bulk length %q", line)
		}
		if n < 0 {
			return "$-1", nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return "$" + string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return "", fmt.Errorf("bad array length %q", line)
		}
		if n <= 0 {
			return "*0", nil
		}
		first, err := readRESPReply(br)
		if err != nil {
			return "", err
		}
		for i := 1; i < n; i++ {
			if _, err := readRESPReply(br); err != nil {
				return "", err
			}
		}
		return "*" + first, nil
	}
	return "", fmt.Errorf("unexpected RESP type %q", line)
}

// seedKeys writes names[i]=val through one pipelined wire connection in
// the leg's own protocol, verifying every reply.
func seedKeys(addr, protocol string, names []string, val string) error {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	br := bufio.NewReader(c)
	const batch = 64
	for i := 0; i < len(names); i += batch {
		end := i + batch
		if end > len(names) {
			end = len(names)
		}
		var buf []byte
		for _, k := range names[i:end] {
			if protocol == "resp" {
				buf = fmt.Appendf(buf, "SET %s %s\r\n", k, val)
			} else {
				buf = fmt.Appendf(buf, "PUT /kv?key=%s&val=%s HTTP/1.1\r\n\r\n", k, val)
			}
		}
		_ = c.SetDeadline(time.Now().Add(clientTimeout))
		if _, err := c.Write(buf); err != nil {
			return err
		}
		for range names[i:end] {
			if protocol == "resp" {
				rep, err := readRESPReply(br)
				if err != nil {
					return err
				}
				if rep != "+OK" {
					return fmt.Errorf("seed SET: %s", rep)
				}
			} else {
				code, body, err := readHTTPResponse(br)
				if err != nil {
					return err
				}
				if code != 200 {
					return fmt.Errorf("seed PUT: %d %s", code, body)
				}
			}
		}
	}
	return nil
}

// workerStats is one connection's tally, merged after the leg.
type workerStats struct {
	ops, good, errs int64
	h               hist
}

// runWorker is one keep-alive client connection: it fires a batch of
// leg.pipeline operations every interval on the open-loop schedule and
// reads the responses back, reconnecting (and counting an error) when
// the connection dies under it — which in a kill storm it regularly
// does.
func runWorker(id int, leg legConfig, addr string, start, stopAt time.Time, interval time.Duration, ws *workerStats) {
	rng := rand.New(rand.NewSource(int64(id)*7919 + 17))
	var c net.Conn
	var br *bufio.Reader
	dial := func() bool {
		for time.Now().Before(stopAt) {
			cc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err == nil {
				c = cc
				br = bufio.NewReader(cc)
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
	if !dial() {
		return
	}
	defer func() { _ = c.Close() }()

	// buildOp appends one operation's wire bytes; readOp consumes its
	// replies and classifies success.
	var buildOp func(buf []byte) []byte
	var readOp func() (bool, error)
	switch {
	case leg.killRate > 0 && leg.protocol == "resp":
		// Pair transfer as MULTI/EXEC: 4 commands, 4 replies, the EXEC
		// array decides. Pair `id` is this worker's alone.
		buildOp = func(buf []byte) []byte {
			d := rng.Intn(400)
			return fmt.Appendf(buf, "MULTI\r\nSET p%d %d\r\nSET p%d %d\r\nEXEC\r\n",
				2*id, pairSeed-d, 2*id+1, pairSeed+d)
		}
		readOp = func() (bool, error) {
			var last string
			for i := 0; i < 4; i++ {
				rep, err := readRESPReply(br)
				if err != nil {
					return false, err
				}
				last = rep
			}
			return strings.HasPrefix(last, "*+COMMITTED"), nil
		}
	case leg.killRate > 0:
		buildOp = func(buf []byte) []byte {
			d := rng.Intn(400)
			return fmt.Appendf(buf, "GET /kv/multi?ops=w:p%d:%d,w:p%d:%d HTTP/1.1\r\n\r\n",
				2*id, pairSeed-d, 2*id+1, pairSeed+d)
		}
		readOp = func() (bool, error) {
			code, body, err := readHTTPResponse(br)
			if err != nil {
				return false, err
			}
			return code == 200 && strings.HasPrefix(body, "COMMITTED"), nil
		}
	case leg.protocol == "resp":
		buildOp = func(buf []byte) []byte {
			k := rng.Intn(quiescentKeys)
			if rng.Intn(2) == 0 {
				return fmt.Appendf(buf, "GET k%d\r\n", k)
			}
			return fmt.Appendf(buf, "SET k%d x%d\r\n", k, rng.Intn(1000))
		}
		readOp = func() (bool, error) {
			rep, err := readRESPReply(br)
			if err != nil {
				return false, err
			}
			return !strings.HasPrefix(rep, "-"), nil
		}
	default:
		buildOp = func(buf []byte) []byte {
			k := rng.Intn(quiescentKeys)
			if rng.Intn(2) == 0 {
				return fmt.Appendf(buf, "GET /kv?key=k%d HTTP/1.1\r\n\r\n", k)
			}
			return fmt.Appendf(buf, "PUT /kv?key=k%d&val=x%d HTTP/1.1\r\n\r\n", k, rng.Intn(1000))
		}
		readOp = func() (bool, error) {
			code, _, err := readHTTPResponse(br)
			if err != nil {
				return false, err
			}
			return code == 200 || code == 404, nil
		}
	}

	// Phase-offset the schedule so the fleet doesn't fire in lockstep.
	next := start.Add(time.Duration(rng.Int63n(int64(interval) + 1)))
	buf := make([]byte, 0, 4096)
	for {
		now := time.Now()
		if !now.Before(stopAt) {
			return
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
			if !next.Before(stopAt) {
				return
			}
		}
		intended := next
		next = next.Add(interval)
		buf = buf[:0]
		for i := 0; i < leg.pipeline; i++ {
			buf = buildOp(buf)
		}
		ws.ops += int64(leg.pipeline)
		ok := func() bool {
			_ = c.SetDeadline(time.Now().Add(clientTimeout))
			if _, err := c.Write(buf); err != nil {
				return false
			}
			for i := 0; i < leg.pipeline; i++ {
				good, err := readOp()
				if err != nil {
					return false
				}
				if good {
					ws.good++
				}
			}
			return true
		}()
		us := time.Since(intended).Microseconds()
		if ok {
			for i := 0; i < leg.pipeline; i++ {
				ws.h.add(us)
			}
			continue
		}
		// The connection died (in a storm: was killed) mid-batch; the
		// in-flight requests are the casualty, the schedule restarts
		// from a fresh connection.
		ws.errs++
		_ = c.Close()
		if !dial() {
			return
		}
		next = time.Now()
	}
}

// runKiller fires kill requests at the configured rate, each on a fresh
// short-lived connection so the kills spread across shards (a session's
// /chaos/kill reaches only its own shard's session table). Returns the
// number of confirmed kills.
func runKiller(leg legConfig, addr string, stopAt time.Time, kills *atomic.Int64, done chan<- struct{}) {
	defer close(done)
	interval := time.Second / time.Duration(leg.killRate)
	for time.Now().Before(stopAt) {
		time.Sleep(interval)
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			continue
		}
		_ = c.SetDeadline(time.Now().Add(2 * time.Second))
		br := bufio.NewReader(c)
		if leg.protocol == "resp" {
			if _, err := io.WriteString(c, "CALL /chaos/kill\r\n"); err == nil {
				if rep, err := readRESPReply(br); err == nil && strings.Contains(rep, "killed") {
					kills.Add(1)
				}
			}
		} else {
			if _, err := io.WriteString(c, "GET /chaos/kill HTTP/1.1\r\nConnection: close\r\n\r\n"); err == nil {
				if _, body, err := readHTTPResponse(br); err == nil && strings.Contains(body, "killed") {
					kills.Add(1)
				}
			}
		}
		_ = c.Close()
	}
}

// runLeg hosts a fresh fleet, seeds it, drives one leg's load, and
// gathers the row. Storm legs additionally trigger the shard-0 auditor
// and fold its oracles in.
func runLeg(leg legConfig, dur time.Duration, rate float64, shards int, seed int64) (legRow, error) {
	row := legRow{
		Protocol:   leg.protocol,
		Conns:      leg.conns,
		Pipeline:   leg.pipeline,
		KillRate:   leg.killRate,
		TargetRPS:  rate,
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		DurationMs: dur.Milliseconds(),
	}
	ts, err := startServer(shards, leg.conns+8, leg.protocol, seed)
	if err != nil {
		return row, err
	}
	defer func() { _ = ts.m.Shutdown(2 * time.Second) }()

	var names []string
	if leg.killRate > 0 {
		for i := 0; i < 2*leg.conns; i++ {
			names = append(names, "p"+strconv.Itoa(i))
		}
	} else {
		for i := 0; i < quiescentKeys; i++ {
			names = append(names, "k"+strconv.Itoa(i))
		}
	}
	if err := seedKeys(ts.addr, leg.protocol, names, strconv.Itoa(pairSeed)); err != nil {
		return row, fmt.Errorf("seed: %w", err)
	}

	interval := time.Duration(float64(leg.conns*leg.pipeline) / rate * float64(time.Second))
	start := time.Now()
	stopAt := start.Add(dur)
	stats := make([]workerStats, leg.conns)
	var wg sync.WaitGroup
	for i := 0; i < leg.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runWorker(i, leg, ts.addr, start, stopAt, interval, &stats[i])
		}(i)
	}
	var kills atomic.Int64
	killerDone := make(chan struct{})
	if leg.killRate > 0 {
		go runKiller(leg, ts.addr, stopAt, &kills, killerDone)
	} else {
		close(killerDone)
	}
	wg.Wait()
	<-killerDone
	elapsed := time.Since(start)

	var total workerStats
	for i := range stats {
		total.ops += stats[i].ops
		total.good += stats[i].good
		total.errs += stats[i].errs
		total.h.merge(&stats[i].h)
	}
	row.AchievedRPS = float64(total.ops) / elapsed.Seconds()
	row.GoodputRPS = float64(total.good) / elapsed.Seconds()
	row.Errors = total.errs
	row.Kills = kills.Load()
	row.P50us = total.h.quantile(0.50)
	row.P99us = total.h.quantile(0.99)
	row.P999us = total.h.quantile(0.999)
	row.DurationMs = elapsed.Milliseconds()

	if leg.killRate > 0 {
		ts.auditCell.Complete(leg.conns)
		select {
		case res := <-ts.auditReply:
			if res.err != nil {
				return row, fmt.Errorf("audit: %w", res.err)
			}
			row.Wedged = res.wedged
			row.SumDelta = res.sumDelta
		case <-time.After(15 * time.Second):
			return row, fmt.Errorf("auditor never answered")
		}
	}
	return row, nil
}

// buildLegs lays the sweep out: quiescent legs at each connection
// count, one pipelined leg at the lowest, and one kill-storm leg at the
// highest, per protocol.
func buildLegs(protocols []string, connsList []int, pipeline, killRate int) []legConfig {
	var out []legConfig
	for _, p := range protocols {
		for _, c := range connsList {
			out = append(out, legConfig{protocol: p, conns: c, pipeline: 1})
		}
		out = append(out, legConfig{protocol: p, conns: connsList[0], pipeline: pipeline})
		out = append(out, legConfig{protocol: p, conns: connsList[len(connsList)-1], pipeline: 1, killRate: killRate})
	}
	return out
}

func main() {
	var (
		out       = flag.String("out", "BENCH_load.json", "output file")
		dur       = flag.Duration("dur", 2*time.Second, "per-leg run duration")
		quick     = flag.Bool("quick", false, "small smoke sweep (8 conns, short legs)")
		connsFlag = flag.String("conns", "32,1024", "comma-separated keep-alive connection counts")
		rate      = flag.Float64("rate", 3000, "total target requests per second per leg")
		pipeline  = flag.Int("pipeline", 8, "batch depth for the pipelined leg")
		killRate  = flag.Int("kill-rate", 50, "session kills per second in the storm leg")
		shards    = flag.Int("shards", 0, "server runtime shards (0 = netsvc default)")
		protocols = flag.String("protocols", "http,resp", "comma-separated wire protocols to sweep")
		fence     = flag.Float64("fence", 0, "max allowed storm goodput loss in percent; exceeded = exit nonzero (0 disables)")
		seed      = flag.Int64("seed", 1, "root rng seed")
		overload  = flag.Bool("overload", false, "run the overload/drain suite (adaptive admission sweep + rolling shard drain) instead of the latency sweep")
		olFence   = flag.Bool("overload-fence", false, "with -overload: enforce the priority/goodput fences and drain oracles as exit status")
	)
	flag.Parse()

	if *overload {
		if !flagSet("out") {
			*out = "BENCH_overload.json"
		}
		legDur := *dur
		if !flagSet("dur") {
			legDur = 3 * time.Second
			if *quick {
				legDur = time.Second
			}
		}
		if bad := runOverloadSuite(*out, legDur, *quick, *olFence, *seed); bad > 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %d overload oracles/fences violated\n", bad)
			os.Exit(1)
		}
		return
	}

	connsList := []int{}
	for _, s := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "killload: bad -conns entry %q\n", s)
			os.Exit(2)
		}
		connsList = append(connsList, n)
	}
	protoList := strings.Split(*protocols, ",")
	for i := range protoList {
		protoList[i] = strings.TrimSpace(protoList[i])
	}
	if *quick {
		connsList = []int{8}
		if !flagSet("dur") {
			*dur = 300 * time.Millisecond
		}
		if !flagSet("rate") {
			*rate = 800
		}
	}

	legs := buildLegs(protoList, connsList, *pipeline, *killRate)
	rows := make([]legRow, 0, len(legs))
	bad := 0
	for i, leg := range legs {
		row, err := runLeg(leg, *dur, *rate, *shards, *seed+int64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "killload: leg %s conns=%d pipeline=%d kill=%d: %v\n",
				leg.protocol, leg.conns, leg.pipeline, leg.killRate, err)
			os.Exit(1)
		}
		if leg.killRate > 0 {
			// Goodput loss against the matched quiescent leg (same
			// protocol and connection count, no pipelining, no kills).
			for _, q := range rows {
				if q.Protocol == row.Protocol && q.Conns == row.Conns && q.Pipeline == 1 && q.KillRate == 0 && q.GoodputRPS > 0 {
					row.GoodputDeltaPct = 100 * (q.GoodputRPS - row.GoodputRPS) / q.GoodputRPS
				}
			}
		}
		rows = append(rows, row)
		status := "ok"
		if leg.killRate > 0 && (row.Wedged != 0 || row.SumDelta != 0) {
			status = "INTEGRITY VIOLATION"
			bad++
		}
		if *fence > 0 && leg.killRate > 0 && row.GoodputDeltaPct > *fence {
			status = fmt.Sprintf("FENCE EXCEEDED (%.1f%% > %.1f%%)", row.GoodputDeltaPct, *fence)
			bad++
		}
		fmt.Fprintf(os.Stderr,
			"[%d/%d] %-4s conns=%-4d pipe=%d kill=%-3d: %6.0f rps (goodput %6.0f) p50=%dus p99=%dus p999=%dus errs=%d kills=%d wedged=%d sumΔ=%d %s\n",
			i+1, len(legs), row.Protocol, row.Conns, row.Pipeline, row.KillRate,
			row.AchievedRPS, row.GoodputRPS, row.P50us, row.P99us, row.P999us,
			row.Errors, row.Kills, row.Wedged, row.SumDelta, status)
	}

	rep := report{
		Suite: "wire-load",
		Description: "E23: wire-protocol latency under kill storms. Each leg self-hosts the sharded kill-safe server (internal/netsvc) with the transactional KV store behind the cross-runtime gateway and drives it over real TCP from plain-goroutine clients with open-loop pacing (latency measured from intended send time). Quiescent legs run a GET/SET mix over keep-alive connections per protocol (HTTP/1.1 and RESP) at each connection count; the pipelined leg batches requests into single writes; the kill-storm leg runs MULTI/EXEC pair transfers (disjoint pairs seeded 500/500, every transaction writes values summing to 1000) while a killer terminates random sessions over the wire via /chaos/kill. Storm oracles after quiescence: wedged (store audit residue) and sum_delta (pair-sum drift = half-commits) must be zero; goodput_delta_pct is the storm's goodput loss versus the matched quiescent leg.",
		Recorded:    time.Now().Format("2006-01-02"),
		Environment: map[string]any{
			"goos":       goruntime.GOOS,
			"goarch":     goruntime.GOARCH,
			"cpus":       goruntime.NumCPU(),
			"gomaxprocs": goruntime.GOMAXPROCS(0),
			"go":         goruntime.Version(),
			"command": fmt.Sprintf("go run ./cmd/killload -dur %s -conns %s -rate %.0f -pipeline %d -kill-rate %d (quick=%v)",
				*dur, *connsFlag, *rate, *pipeline, *killRate, *quick),
		},
		Legs: rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "killload: marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "killload: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%d legs -> %s\n", len(rows), *out)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d legs violated oracles or fences\n", bad)
		os.Exit(1)
	}
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
