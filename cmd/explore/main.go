// Command explore drives the systematic concurrency explorer from the
// command line: sweep schedules of a scenario (uniform or
// coverage-guided, across a fleet of worker processes), replay a
// recorded trace, shrink a failing trace, or record a single schedule.
//
//	explore list
//	explore run -scenario queue-unsafe -seeds 100 [-expect stuck] [-out wedge.trace]
//	explore run -scenario txn-kill-midlock -workers 4 -budget 60s -strategy coverage
//	explore record -scenario queue -seed 7 -out run.trace
//	explore replay -trace wedge.trace [-expect stuck]
//	explore shrink -trace wedge.trace -out small.trace
//	explore worker        (internal: fleet protocol on stdin/stdout)
//
// Exit status: 0 when the outcome matches expectations, 1 otherwise, 2
// on usage errors. For run, the default expectation is pass (no failing
// schedule); -expect stuck/fail inverts that for scenarios that exist to
// be broken, which is what CI gates on.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/explore"
	"repro/internal/explore/fleet"
	"repro/internal/explore/scenarios"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, sc := range scenarios.All() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Desc)
		}
	case "run":
		cmdRun(os.Args[2:])
	case "record":
		cmdRecord(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "shrink":
		cmdShrink(os.Args[2:])
	case "worker":
		// The fleet driver re-execs this binary with `worker` and speaks
		// the pipe protocol; nothing here is for human consumption.
		if err := fleet.Serve(os.Stdin, os.Stdout, scenarios.ByName); err != nil {
			fmt.Fprintf(os.Stderr, "explore worker: %v\n", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: explore {list|run|record|replay|shrink} [flags]")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "explore: "+format+"\n", args...)
	os.Exit(2)
}

func lookup(name string) explore.Scenario {
	sc, ok := scenarios.ByName(name)
	if !ok {
		fatal("unknown scenario %q (try: explore list)", name)
	}
	return sc
}

func optFlags(fs *flag.FlagSet) *explore.Options {
	o := &explore.Options{}
	fs.IntVar(&o.MaxSteps, "steps", 0, "max decisions per schedule (default 500)")
	fs.IntVar(&o.FaultBudget, "faults", 0, "max faults per schedule (default 2)")
	fs.Float64Var(&o.FaultProb, "prob", 0, "per-decision fault probability (default 0.25)")
	fs.DurationVar(&o.StepTimeout, "timeout", 0, "real-time watchdog per step (default 10s)")
	return o
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("scenario", "", "scenario name (required)")
	seeds := fs.Int("seeds", 0, "number of schedules to explore (default 100, or unlimited with -budget)")
	seed := fs.Int64("seed", 1, "base seed")
	budget := fs.Duration("budget", 0, "wall-clock budget for the sweep (0: seeds only)")
	strategy := fs.String("strategy", "uniform", "schedule strategy: uniform or coverage")
	workers := fs.Int("workers", 1, "worker processes to shard schedules across")
	pin := fs.String("pin", "", "directory to pin shrunk failing traces into")
	findings := fs.Int("findings", 0, "distinct findings to collect before stopping (default 1)")
	out := fs.String("out", "", "write the first failing (shrunk) trace here")
	expect := fs.String("expect", "pass", "expected result: pass, stuck, or fail")
	verbose := fs.Bool("v", false, "log fleet progress to stderr")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *name == "" {
		fatal("run: -scenario is required")
	}
	sc := lookup(*name)

	strat, ok := explore.ParseStrategy(*strategy)
	if !ok {
		fatal("run: unknown strategy %q (want uniform or coverage)", *strategy)
	}
	opts.Seeds = *seeds
	if *seeds == 0 && *budget > 0 {
		// A time budget with no explicit seed cap means "as many as fit".
		opts.Seeds = 1 << 30
	}
	opts.BaseSeed = *seed
	opts.Budget = *budget
	opts.Strategy = strat
	opts.Workers = *workers

	cfg := fleet.Config{PinDir: *pin, MaxFindings: *findings}
	if *workers > 1 {
		exe, err := os.Executable()
		if err != nil {
			fatal("run: cannot locate own binary for worker re-exec: %v", err)
		}
		cfg.WorkerCommand = []string{exe, "worker"}
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	rep, err := fleet.Run(sc, *opts, cfg)
	fmt.Print(rep.Summary())
	if err != nil {
		fatal("run: %v", err)
	}
	got := "pass"
	if len(rep.Findings) > 0 {
		f := rep.Findings[0]
		got = f.Status.String()
		if *out != "" {
			if err := f.Trace.WriteFile(*out); err != nil {
				fatal("write %s: %v", *out, err)
			}
			fmt.Printf("shrunk replay trace written to %s\n", *out)
		}
	}
	exitExpect(*expect, got)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("scenario", "", "scenario name (required)")
	seed := fs.Int64("seed", 1, "seed for the schedule")
	out := fs.String("out", "", "trace file to write (required)")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *name == "" || *out == "" {
		fatal("record: -scenario and -out are required")
	}
	sc := lookup(*name)
	if opts.FaultProb == 0 {
		// Mirror Explore's default so `record -seed N` reproduces the
		// same schedule `run` explored for seed N.
		opts.FaultProb = 0.25
	}
	o := explore.RunOnce(sc, explore.NewRandomPicker(*seed, opts.FaultProb), *seed, *opts)
	fmt.Printf("scenario %s seed %d: %s (%d decisions, %d faults)\n",
		sc.Name, *seed, o.Status, len(o.Trace.Actions), o.Faults)
	if o.Err != nil {
		fmt.Printf("  %v\n", o.Err)
	}
	if err := o.Trace.WriteFile(*out); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("trace written to %s\n", *out)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	name := fs.String("scenario", "", "override the scenario named in the trace")
	expect := fs.String("expect", "", "expected result: pass, stuck, fail (default: just report)")
	lenient := fs.Bool("lenient", false, "skip decisions that are no longer available")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *path == "" {
		fatal("replay: -trace is required")
	}
	tr, err := explore.ReadTraceFile(*path)
	if err != nil {
		fatal("%v", err)
	}
	if *name == "" {
		*name = tr.Scenario
	}
	sc := lookup(*name)
	opts.Lenient = *lenient
	o := explore.Replay(sc, tr, *opts)
	fmt.Printf("scenario %s: %s (%d decisions executed)\n", sc.Name, o.Status, len(o.Trace.Actions))
	if o.Err != nil {
		fmt.Printf("  %v\n", o.Err)
	}
	if *expect != "" {
		exitExpect(*expect, o.Status.String())
	}
	if o.Status == explore.StatusError {
		os.Exit(1)
	}
}

func cmdShrink(args []string) {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	out := fs.String("out", "", "write the shrunk trace here (default: overwrite input)")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *path == "" {
		fatal("shrink: -trace is required")
	}
	if *out == "" {
		*out = *path
	}
	tr, err := explore.ReadTraceFile(*path)
	if err != nil {
		fatal("%v", err)
	}
	sc := lookup(tr.Scenario)
	lopts := *opts
	lopts.Lenient = true
	o := explore.Replay(sc, tr, lopts)
	if !o.Failing() {
		fatal("trace does not fail (%s); nothing to shrink", o.Status)
	}
	shrunk, replays := explore.Shrink(sc, tr, *opts, nil)
	fmt.Printf("shrunk %d -> %d decisions in %d replays\n",
		len(tr.Actions), len(shrunk.Actions), replays)
	if err := shrunk.WriteFile(*out); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("shrunk trace written to %s\n", *out)
}

func exitExpect(expect, got string) {
	if expect != got {
		fmt.Printf("FAIL: expected %s, got %s\n", expect, got)
		os.Exit(1)
	}
	fmt.Printf("OK: %s\n", got)
	os.Exit(0)
}
