// Command explore drives the systematic concurrency explorer from the
// command line: run seeded-random schedules of a scenario, replay a
// recorded trace, shrink a failing trace, or record a single schedule.
//
//	explore list
//	explore run -scenario queue-unsafe -seeds 100 [-expect stuck] [-out wedge.trace]
//	explore record -scenario queue -seed 7 -out run.trace
//	explore replay -trace wedge.trace [-expect stuck]
//	explore shrink -trace wedge.trace -out small.trace
//
// Exit status: 0 when the outcome matches expectations, 1 otherwise, 2
// on usage errors. For run, the default expectation is pass (no failing
// schedule); -expect stuck/fail inverts that for scenarios that exist to
// be broken, which is what CI gates on.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/explore"
	"repro/internal/explore/scenarios"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, sc := range scenarios.All() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Desc)
		}
	case "run":
		cmdRun(os.Args[2:])
	case "record":
		cmdRecord(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "shrink":
		cmdShrink(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: explore {list|run|record|replay|shrink} [flags]")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "explore: "+format+"\n", args...)
	os.Exit(2)
}

func lookup(name string) explore.Scenario {
	sc, ok := scenarios.ByName(name)
	if !ok {
		fatal("unknown scenario %q (try: explore list)", name)
	}
	return sc
}

func optFlags(fs *flag.FlagSet) *explore.Options {
	o := &explore.Options{}
	fs.IntVar(&o.MaxSteps, "steps", 0, "max decisions per schedule (default 500)")
	fs.IntVar(&o.FaultBudget, "faults", 0, "max faults per schedule (default 2)")
	fs.Float64Var(&o.FaultProb, "prob", 0, "per-decision fault probability (default 0.25)")
	fs.DurationVar(&o.StepTimeout, "timeout", 0, "real-time watchdog per step (default 10s)")
	return o
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("scenario", "", "scenario name (required)")
	seeds := fs.Int("seeds", 100, "number of seeds to explore")
	seed := fs.Int64("seed", 1, "base seed")
	out := fs.String("out", "", "write the first failing trace here")
	expect := fs.String("expect", "pass", "expected result: pass, stuck, or fail")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *name == "" {
		fatal("run: -scenario is required")
	}
	sc := lookup(*name)
	start := time.Now()
	rep := explore.Explore(sc, *opts, *seed, *seeds)
	fmt.Printf("scenario %s: %d schedules, %d decisions, %d faults injected in %v\n",
		rep.Scenario, rep.Schedules, rep.Steps, rep.Faults, time.Since(start).Round(time.Millisecond))
	for st, n := range rep.Outcomes {
		fmt.Printf("  %-7s %d\n", st, n)
	}
	got := "pass"
	if f := rep.FirstFailure; f != nil {
		got = f.Status.String()
		fmt.Printf("seed %d: %s", rep.FirstFailureSeed, f.Status)
		if f.Err != nil {
			fmt.Printf(" (%v)", f.Err)
		}
		fmt.Printf(" after %d decisions\n", len(f.Trace.Actions))
		if *out != "" {
			if err := f.Trace.WriteFile(*out); err != nil {
				fatal("write %s: %v", *out, err)
			}
			fmt.Printf("replay trace written to %s\n", *out)
		}
	}
	exitExpect(*expect, got)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("scenario", "", "scenario name (required)")
	seed := fs.Int64("seed", 1, "seed for the schedule")
	out := fs.String("out", "", "trace file to write (required)")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *name == "" || *out == "" {
		fatal("record: -scenario and -out are required")
	}
	sc := lookup(*name)
	if opts.FaultProb == 0 {
		// Mirror Explore's default so `record -seed N` reproduces the
		// same schedule `run` explored for seed N.
		opts.FaultProb = 0.25
	}
	o := explore.RunOnce(sc, explore.NewRandomPicker(*seed, opts.FaultProb), *seed, *opts)
	fmt.Printf("scenario %s seed %d: %s (%d decisions, %d faults)\n",
		sc.Name, *seed, o.Status, len(o.Trace.Actions), o.Faults)
	if o.Err != nil {
		fmt.Printf("  %v\n", o.Err)
	}
	if err := o.Trace.WriteFile(*out); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("trace written to %s\n", *out)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	name := fs.String("scenario", "", "override the scenario named in the trace")
	expect := fs.String("expect", "", "expected result: pass, stuck, fail (default: just report)")
	lenient := fs.Bool("lenient", false, "skip decisions that are no longer available")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *path == "" {
		fatal("replay: -trace is required")
	}
	tr, err := explore.ReadTraceFile(*path)
	if err != nil {
		fatal("%v", err)
	}
	if *name == "" {
		*name = tr.Scenario
	}
	sc := lookup(*name)
	var o *explore.Outcome
	if *lenient {
		o = explore.ReplayLenient(sc, tr, *opts)
	} else {
		o = explore.Replay(sc, tr, *opts)
	}
	fmt.Printf("scenario %s: %s (%d decisions executed)\n", sc.Name, o.Status, len(o.Trace.Actions))
	if o.Err != nil {
		fmt.Printf("  %v\n", o.Err)
	}
	if *expect != "" {
		exitExpect(*expect, o.Status.String())
	}
	if o.Status == explore.StatusError {
		os.Exit(1)
	}
}

func cmdShrink(args []string) {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	out := fs.String("out", "", "write the shrunk trace here (default: overwrite input)")
	opts := optFlags(fs)
	_ = fs.Parse(args)
	if *path == "" {
		fatal("shrink: -trace is required")
	}
	if *out == "" {
		*out = *path
	}
	tr, err := explore.ReadTraceFile(*path)
	if err != nil {
		fatal("%v", err)
	}
	sc := lookup(tr.Scenario)
	o := explore.ReplayLenient(sc, tr, *opts)
	if !o.Failing() {
		fatal("trace does not fail (%s); nothing to shrink", o.Status)
	}
	shrunk, replays := explore.Shrink(sc, tr, *opts, nil)
	fmt.Printf("shrunk %d -> %d decisions in %d replays\n",
		len(tr.Actions), len(shrunk.Actions), replays)
	if err := shrunk.WriteFile(*out); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("shrunk trace written to %s\n", *out)
}

func exitExpect(expect, got string) {
	if expect != got {
		fmt.Printf("FAIL: expected %s, got %s\n", expect, got)
		os.Exit(1)
	}
	fmt.Printf("OK: %s\n", got)
	os.Exit(0)
}
