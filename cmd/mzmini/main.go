// Command mzmini runs programs written for the mini-MzScheme interpreter,
// which exposes the task-control and Concurrent ML primitives of the
// kill-safe runtime under the names used in "Kill-Safe Synchronization
// Abstractions" (Flatt & Findler, PLDI 2004). The paper's figures,
// transcribed into mzmini, live under examples/figures/.
//
// Usage:
//
//	mzmini file.scm...
//	mzmini -e '(printf "~a~n" (+ 1 2))'
//	mzmini -i           # read-eval-print loop
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
)

func main() {
	expr := flag.String("e", "", "evaluate an expression instead of files")
	repl := flag.Bool("i", false, "interactive read-eval-print loop")
	flag.Parse()

	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)

	if *expr != "" {
		if err := in.RunString(*expr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, path := range flag.Args() {
		if err := in.RunFile(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *repl {
		runREPL(rt, in)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mzmini [-e expr] [-i] file.scm...")
		os.Exit(2)
	}
}

// runREPL reads forms from stdin, accumulating lines until parentheses
// balance, and prints each form's value. The whole session runs on one
// runtime thread, so definitions persist.
func runREPL(rt *core.Runtime, in *interp.Interp) {
	err := rt.Run(func(th *core.Thread) {
		sc := bufio.NewScanner(os.Stdin)
		var pending strings.Builder
		fmt.Print("mzmini> ")
		for sc.Scan() {
			pending.WriteString(sc.Text())
			pending.WriteByte('\n')
			src := pending.String()
			if !balanced(src) {
				fmt.Print("   ...> ")
				continue
			}
			pending.Reset()
			if strings.TrimSpace(src) == "" {
				fmt.Print("mzmini> ")
				continue
			}
			v, err := in.EvalString(th, src)
			switch {
			case err != nil:
				fmt.Println("error:", err)
			default:
				if _, isVoid := v.(interp.Void); !isVoid {
					fmt.Println(interp.WriteString(v))
				}
			}
			fmt.Print("mzmini> ")
		}
		fmt.Println()
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// balanced reports whether every open paren/bracket in src is closed
// (ignoring strings and comments well enough for interactive use).
func balanced(src string) bool {
	depth := 0
	inString := false
	inComment := false
	escaped := false
	for _, c := range src {
		switch {
		case inComment:
			if c == '\n' {
				inComment = false
			}
		case inString:
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inString = false
			}
		case c == '"':
			inString = true
		case c == ';':
			inComment = true
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
		}
	}
	return depth <= 0 && !inString
}
