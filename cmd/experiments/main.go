// Command experiments runs the behavioural experiments of DESIGN.md
// (E1–E14) — one per figure or claim in "Kill-Safe Synchronization
// Abstractions" (PLDI 2004) — and prints an outcome table. The paper has
// no quantitative tables; these are the rows its evaluation consists of.
// Quantitative characterization lives in bench_test.go.
//
// Run with: go run ./cmd/experiments
package main

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	killsafe "repro"
	"repro/abstractions/msgqueue"
	"repro/abstractions/queue"
	"repro/abstractions/supervise"
	"repro/abstractions/swapchan"
	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/interp"
	"repro/internal/web"
)

type experiment struct {
	id    string
	paper string
	claim string
	run   func() (string, bool)
}

func main() {
	experiments := []experiment{
		{"E1", "Fig 5", "unsafe queue wedges survivor after creator shutdown", e1},
		{"E2", "Fig 6", "guarded queue survives creator shutdown, contents intact", e2},
		{"E3", "Fig 7", "queue events multiplex via choice without corruption", e3},
		{"E4", "Fig 8", "abandoned requests leak without nacks", e4},
		{"E5", "Fig 9", "nacks keep the request list clean", e5},
		{"E6", "Fig 10", "hostile predicate harms only its submitter", e6},
		{"E7", "Fig 11", "direct swap is break-safe (no half swaps)", e7},
		{"E8", "Fig 12", "kill-safe swap survives waiter kill", e8},
		{"E9", "Figs 1–4", "shared document outlives either servlet, dies with both", e9},
		{"E10", "§2.2", "help system survives cancelled click; inner shutdown reaps all", e10},
		{"E11", "§3.3", "yoking: resume chaining and custodian propagation", e11},
		{"E12", "§2.3", "no conspiracy: all custodians dead ⇒ nothing runs", e12},
		{"E13", "§4", "kill storm: survivors never wedge, FIFO per producer", e13},
		{"E14", "Figs 5–12", "paper's Scheme figures run under mzmini", e14},
		{"E19", "ext", "supervision: restart after kill, escalation, breaker recovery", e19},
	}

	fmt.Println("Kill-Safe Synchronization Abstractions — behavioural experiments")
	fmt.Println(strings.Repeat("-", 78))
	failures := 0
	// A panicking experiment must score as a FAIL row (and a nonzero
	// exit), not tear down the harness before later rows run.
	safeRun := func(e experiment) (obs string, ok bool) {
		defer func() {
			if r := recover(); r != nil {
				obs, ok = fmt.Sprintf("panic: %v", r), false
			}
		}()
		return e.run()
	}
	for _, e := range experiments {
		obs, ok := safeRun(e)
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %-9s %-4s %s\n", e.id, e.paper, status, e.claim)
		fmt.Printf("     observed: %s\n", obs)
	}
	fmt.Println(strings.Repeat("-", 78))
	if failures > 0 {
		fmt.Printf("%d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments passed")
}

// withRT runs fn on a fresh runtime and returns its observation.
func withRT(fn func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool)) (string, bool) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	var obs string
	var ok bool
	err := rt.Run(func(th *killsafe.Thread) { obs, ok = fn(rt, th) })
	if err != nil {
		return fmt.Sprintf("runtime error: %v", err), false
	}
	return obs, ok
}

// shareQueue creates a queue (kill-safe or not) inside a disposable task
// and returns it plus that task's custodian.
func shareQueue(rt *killsafe.Runtime, th *killsafe.Thread, unsafe bool) (*queue.Queue[int], *killsafe.Custodian) {
	c := killsafe.NewCustodian(rt.RootCustodian())
	handOff := make(chan *queue.Queue[int], 1)
	th.WithCustodian(c, func() {
		th.Spawn("creator", func(x *killsafe.Thread) {
			var q *queue.Queue[int]
			if unsafe {
				q = queue.NewUnsafe[int](x)
			} else {
				q = queue.New[int](x)
			}
			_ = q.Send(x, 1)
			handOff <- q
			_ = killsafe.Sleep(x, time.Hour)
		})
	})
	return <-handOff, c
}

func e1() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		q, c := shareQueue(rt, th, true)
		c.Shutdown()
		sent := make(chan struct{})
		th.Spawn("survivor", func(x *killsafe.Thread) {
			_ = q.Send(x, 2)
			close(sent)
		})
		select {
		case <-sent:
			return "send into unsafe queue completed after creator shutdown", false
		case <-time.After(50 * time.Millisecond):
			return fmt.Sprintf("send stuck after 50ms; manager suspended=%v", q.Manager().Suspended()), q.Manager().Suspended()
		}
	})
}

func e2() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		q, c := shareQueue(rt, th, false)
		c.Shutdown()
		v1, err1 := q.Recv(th)
		err2 := q.Send(th, 2)
		v2, err3 := q.Recv(th)
		ok := err1 == nil && err2 == nil && err3 == nil && v1 == 1 && v2 == 2
		return fmt.Sprintf("recv=%d send+recv=%d after shutdown", v1, v2), ok
	})
}

func e3() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		qa := queue.New[int](th)
		qb := queue.New[int](th)
		_ = qb.Send(th, 7)
		v, err := core.Sync(th, core.Choice(qa.RecvEvt(), qb.RecvEvt()))
		if err != nil || v != 7 {
			return fmt.Sprintf("choice got (%v, %v)", v, err), false
		}
		// The losing queue is unharmed.
		_ = qa.Send(th, 8)
		w, err := qa.Recv(th)
		return fmt.Sprintf("choice=%v, loser still delivers %v", v, w), err == nil && w == 8
	})
}

func e4() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: false})
		const rounds = 25
		abandonRounds(th, q, rounds)
		n := q.PendingRequests()
		return fmt.Sprintf("%d abandoned requests retained after %d rounds", n, rounds), n >= rounds
	})
}

func e5() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		q := msgqueue.New[int](th)
		const rounds = 25
		abandonRounds(th, q, rounds)
		deadline := time.Now().Add(2 * time.Second)
		for q.PendingRequests() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		n := q.PendingRequests()
		return fmt.Sprintf("%d requests retained after %d rounds", n, rounds), n == 0
	})
}

func abandonRounds(th *killsafe.Thread, q *msgqueue.Queue[int], rounds int) {
	for i := 0; i < rounds; i++ {
		_, _ = core.Sync(th, core.Choice(
			q.RecvEvt(func(int) bool { return false }),
			core.Always(core.Unit{}),
		))
	}
}

func e6() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		q := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true, RemotePredicates: true})
		_ = q.Send(th, 1)
		die := func(x *killsafe.Thread, _ int) bool { x.Suspend(); return false }
		hostile := killsafe.NewCustodian(rt.RootCustodian())
		th.WithCustodian(hostile, func() {
			th.Spawn("hostile", func(x *killsafe.Thread) {
				_, _ = core.Sync(x, q.RecvThreadEvt(die))
			})
		})
		time.Sleep(10 * time.Millisecond)
		if q.Manager().Suspended() {
			return "manager suspended by hostile predicate", false
		}
		v, err := q.Recv(th, func(v int) bool { return v == 1 })
		hostile.Shutdown()
		rt.TerminateCondemned()
		return fmt.Sprintf("manager unharmed; innocent client got %v (err=%v)", v, err), err == nil && v == 1
	})
}

func e7() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		halves, broken := 0, 0
		for i := 0; i < 30; i++ {
			sc := swapchan.New[int](th)
			res := make(chan int, 1)
			p := th.Spawn("partner", func(x *killsafe.Thread) {
				if v, err := sc.Swap(x, 1); err == nil {
					res <- v
				} else {
					res <- -1
				}
			})
			delay := time.Duration(i%3) * 200 * time.Microsecond
			go func() {
				time.Sleep(delay)
				p.Break()
			}()
			// If the break lands before the partner commits, nobody is
			// left to swap with: time out rather than hang. A timeout
			// paired with a broken partner is the legitimate
			// exclusive-or outcome; any other mismatch is a half-swap.
			v, err := core.Sync(th, core.Choice(
				sc.SwapEvt(2),
				core.Wrap(core.After(rt, 100*time.Millisecond),
					func(core.Value) core.Value { return nil }),
			))
			pv := <-res
			mainGot := err == nil && v != nil
			partnerGot := pv != -1
			switch {
			case mainGot && partnerGot && v == 1 && pv == 2:
				// committed swap, values crossed: break was excluded
			case !mainGot && !partnerGot:
				broken++ // break excluded the swap entirely
			default:
				halves++ // one side observed the swap, the other did not
			}
		}
		return fmt.Sprintf("%d half-swaps in 30 break-raced swaps (%d fully broken)", halves, broken), halves == 0
	})
}

func e8() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		sc := swapchan.NewKillSafe[int](th)
		doomed := th.Spawn("doomed", func(x *killsafe.Thread) { _, _ = sc.Swap(x, 666) })
		time.Sleep(5 * time.Millisecond)
		doomed.Kill()
		time.Sleep(5 * time.Millisecond)
		res := make(chan int, 1)
		th.Spawn("a", func(x *killsafe.Thread) {
			if v, err := sc.Swap(x, 10); err == nil {
				res <- v
			}
		})
		v, err := sc.Swap(th, 20)
		pv := <-res
		ok := err == nil && v == 10 && pv == 20
		return fmt.Sprintf("post-kill swap exchanged (%d, %d)", v, pv), ok
	})
}

func e9() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		c1 := killsafe.NewCustodian(rt.RootCustodian())
		c2 := killsafe.NewCustodian(rt.RootCustodian())
		share := make(chan *doc.Document, 1)
		th.WithCustodian(c1, func() {
			th.Spawn("servlet-1", func(x *killsafe.Thread) {
				d := doc.New(x)
				_, _ = d.Append(x, "one")
				share <- d
				_ = killsafe.Sleep(x, time.Hour)
			})
		})
		d := <-share
		used := make(chan struct{})
		th.WithCustodian(c2, func() {
			th.Spawn("servlet-2", func(x *killsafe.Thread) {
				_, _ = d.Append(x, "two")
				close(used)
				_ = killsafe.Sleep(x, time.Hour)
			})
		})
		<-used
		c1.Shutdown()
		aliveAfterOne := !d.Manager().Suspended()
		c2.Shutdown()
		deadAfterBoth := d.Manager().Suspended()
		rt.TerminateCondemned()
		return fmt.Sprintf("alive after one owner's death: %v; dead after both: %v",
			aliveAfterOne, deadAfterBoth), aliveAfterOne && deadAfterBoth
	})
}

func e10() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		srv := web.NewServer(th)
		srv.Handle("/help", func(_ *killsafe.Thread, _ *web.Session, req *web.Request) web.Response {
			return web.Response{Status: 200, Body: "ok"}
		})
		b, _ := srv.Connect(th)
		if _, _, err := b.Get(th, "/help"); err != nil {
			return fmt.Sprintf("initial get: %v", err), false
		}
		// Cancelled click on a second connection.
		click := killsafe.NewCustodian(rt.RootCustodian())
		b2, _ := srv.Connect(th)
		started := make(chan struct{})
		th.WithCustodian(click, func() {
			th.Spawn("click", func(x *killsafe.Thread) {
				close(started)
				for {
					if _, _, err := b2.Get(x, "/help"); err != nil {
						return
					}
				}
			})
		})
		<-started
		time.Sleep(2 * time.Millisecond)
		click.Shutdown()
		_, _, err := b.Get(th, "/help")
		srv.Shutdown()
		reaped := rt.TerminateCondemned()
		return fmt.Sprintf("browse after cancelled click err=%v; reaped %d on shutdown", err, reaped),
			err == nil && reaped > 0
	})
}

func e11() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		c1 := killsafe.NewCustodian(rt.RootCustodian())
		c2 := killsafe.NewCustodian(rt.RootCustodian())
		sleepTask := func(c *killsafe.Custodian) *killsafe.Thread {
			var t *killsafe.Thread
			th.WithCustodian(c, func() {
				t = th.Spawn("t", func(x *killsafe.Thread) { _ = killsafe.Sleep(x, time.Hour) })
			})
			return t
		}
		t1, t2 := sleepTask(c1), sleepTask(c2)
		killsafe.ResumeVia(t1, t2)
		c1.Shutdown()
		surviving := !t1.Suspended()
		c2.Shutdown()
		suspended := t1.Suspended()
		c3 := killsafe.NewCustodian(rt.RootCustodian())
		killsafe.ResumeWith(t2, c3)
		chained := !t1.Suspended()
		return fmt.Sprintf("survives c1: %v; suspended after c2: %v; resume chains: %v",
			surviving, suspended, chained), surviving && suspended && chained
	})
}

func e12() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		c1 := killsafe.NewCustodian(rt.RootCustodian())
		c2 := killsafe.NewCustodian(rt.RootCustodian())
		var mgr *killsafe.Thread
		th.WithCustodian(c1, func() {
			mgr = th.Spawn("mgr", func(x *killsafe.Thread) { _ = killsafe.Sleep(x, time.Hour) })
		})
		var t2 *killsafe.Thread
		th.WithCustodian(c2, func() {
			t2 = th.Spawn("t2", func(x *killsafe.Thread) { _ = killsafe.Sleep(x, time.Hour) })
		})
		killsafe.ResumeVia(mgr, t2)
		c1.Shutdown()
		c2.Shutdown()
		suspended := mgr.Suspended()
		n := rt.TerminateCondemned()
		return fmt.Sprintf("manager suspended with all custodians dead: %v; %d condemned reaped",
			suspended, n), suspended && n >= 2
	})
}

func e13() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		q := queue.New[[2]int](th)
		const workers = 4
		for w := 0; w < workers; w++ {
			w := w
			c := killsafe.NewCustodian(rt.RootCustodian())
			th.WithCustodian(c, func() {
				th.Spawn("producer", func(x *killsafe.Thread) {
					for i := 0; ; i++ {
						if err := q.Send(x, [2]int{w, i}); err != nil {
							return
						}
					}
				})
			})
			go func() {
				time.Sleep(time.Duration(5+w*3) * time.Millisecond)
				c.Shutdown()
			}()
		}
		last := map[int]int{}
		deadline := time.Now().Add(5 * time.Second)
		received := 0
		for received < 400 {
			if time.Now().After(deadline) {
				return fmt.Sprintf("wedged after %d receives", received), false
			}
			v, err := core.Sync(th, core.Choice(
				q.RecvEvt(),
				core.Wrap(core.After(rt, 100*time.Millisecond), func(core.Value) core.Value { return nil }),
			))
			if err != nil {
				return fmt.Sprintf("recv error: %v", err), false
			}
			if v == nil {
				break // producers all dead and queue drained
			}
			pair := v.([2]int)
			if prev, seen := last[pair[0]]; seen && pair[1] <= prev {
				return fmt.Sprintf("order violated for producer %d", pair[0]), false
			}
			last[pair[0]] = pair[1]
			received++
		}
		rt.TerminateCondemned()
		return fmt.Sprintf("%d items received across kills, per-producer FIFO held", received), received > 0
	})
}

func e14() (string, bool) {
	rt := core.NewRuntime()
	defer rt.Shutdown()
	in := interp.New(rt)
	var out strings.Builder
	in.SetOutput(&out)
	for _, f := range []string{
		"examples/figures/fig07-queue.scm",
		"examples/figures/fig09-msg-queue.scm",
		"examples/figures/fig10-remote-pred.scm",
		"examples/figures/fig11-swap.scm",
		"examples/figures/fig12-killsafe-swap.scm",
	} {
		if err := in.RunFile(f); err != nil {
			return fmt.Sprintf("%s: %v", f, err), false
		}
	}
	lines := len(strings.Split(strings.TrimRight(out.String(), "\n"), "\n"))
	return fmt.Sprintf("5 figure programs ran, %d output lines", lines), lines >= 19
}

// e19 exercises the supervision layer end to end: a killed child is
// restarted under a fresh custodian (the dead incarnation's custodian
// retains no threads), a restart storm escalates by shutting down the
// supervisor's own custodian, and a tripped circuit breaker recovers
// through a half-open probe once the cooldown elapses.
func e19() (string, bool) {
	return withRT(func(rt *killsafe.Runtime, th *killsafe.Thread) (string, bool) {
		poll := func(what string, cond func() bool) bool {
			deadline := time.Now().Add(5 * time.Second)
			for !cond() {
				if time.Now().After(deadline) {
					return false
				}
				time.Sleep(time.Millisecond)
			}
			return true
		}

		// Restart after kill: one-for-one, no backoff so the restart is
		// immediate.
		sup := supervise.New(th, supervise.Options{
			MaxRestarts: -1,
			BaseBackoff: -1,
		})
		sup.Start(th, supervise.ChildSpec{
			Name:   "worker",
			Policy: supervise.Permanent,
			Start:  func(x *killsafe.Thread) { _ = killsafe.Sleep(x, time.Hour) },
		})
		if !poll("first incarnation", func() bool { return sup.ChildThread("worker") != nil }) {
			return "worker never started", false
		}
		first := sup.ChildThread("worker")
		firstCust := first.Custodians()[0]
		first.Kill()
		if !poll("restart", func() bool {
			cur := sup.ChildThread("worker")
			return sup.Restarts() >= 1 && cur != nil && cur != first && !cur.Done()
		}) {
			return "killed worker was not restarted", false
		}
		cleanOld := firstCust.Dead() && firstCust.ManagedThreads() == 0
		sup.Stop()

		// Escalation: a child that exits immediately blows through the
		// intensity ceiling and takes the supervisor's custodian down.
		esc := supervise.New(th, supervise.Options{
			MaxRestarts: 1,
			Window:      time.Minute,
			BaseBackoff: -1,
		})
		esc.Start(th, supervise.ChildSpec{
			Name:   "flapper",
			Policy: supervise.Permanent,
			Start:  func(*killsafe.Thread) {},
		})
		if !poll("escalation", func() bool { return esc.Escalated() && esc.Custodian().Dead() }) {
			return "restart storm did not escalate", false
		}

		// Breaker: one failure trips it, rejection is immediate, and after
		// the cooldown a successful half-open probe closes it again.
		brk := supervise.NewBreaker(th, supervise.BreakerOptions{
			FailureThreshold: 1,
			Cooldown:         20 * time.Millisecond,
		})
		boom := errors.New("boom")
		if err := brk.Do(th, func(*killsafe.Thread) error { return boom }); err != boom {
			return fmt.Sprintf("failing call returned %v, want boom", err), false
		}
		if !poll("trip", func() bool { return brk.State() == supervise.Open }) {
			return "breaker did not trip", false
		}
		if err := brk.Do(th, func(*killsafe.Thread) error { return nil }); !errors.Is(err, supervise.ErrBreakerOpen) {
			return fmt.Sprintf("open breaker returned %v, want ErrBreakerOpen", err), false
		}
		time.Sleep(30 * time.Millisecond)
		if err := brk.Do(th, func(*killsafe.Thread) error { return nil }); err != nil {
			return fmt.Sprintf("half-open probe failed: %v", err), false
		}
		recovered := poll("close", func() bool { return brk.State() == supervise.Closed })
		return fmt.Sprintf("restart after kill: %v (old custodian clean: %v); escalated: %v; breaker trips=%d recovered: %v",
				sup.Restarts() >= 1, cleanOld, esc.Escalated(), brk.Trips(), recovered),
			cleanOld && recovered && brk.Trips() == 1
	})
}
