// Command series regenerates the reproduction's quantitative "figures" as
// CSV series (the paper itself has no numeric plots; these characterize
// the reproduced system and the costs of its design choices, matching the
// experiment index in DESIGN.md):
//
//	leak        E4/E5: manager's pending-request count vs. abandonment
//	            rounds, Figure 8 (leaky) vs Figure 9 (nacks)
//	throughput  E2: kill-safe queue items/sec vs. producer count
//	guard       E1/E2/E12: ns/op of unsafe vs kill-safe queue rounds
//	shutdown    custodian shutdown+reap latency vs. controlled threads
//	swap        E7/E8: direct vs kill-safe swap ns/op
//
// Run with: go run ./cmd/series [leak|throughput|guard|shutdown|swap|all]
package main

import (
	"fmt"
	"os"
	"time"

	killsafe "repro"
	"repro/abstractions/msgqueue"
	"repro/abstractions/queue"
	"repro/abstractions/swapchan"
	"repro/internal/core"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	series := map[string]func(){
		"leak":       leakSeries,
		"throughput": throughputSeries,
		"guard":      guardSeries,
		"shutdown":   shutdownSeries,
		"swap":       swapSeries,
	}
	if which == "all" {
		for _, name := range []string{"leak", "throughput", "guard", "shutdown", "swap"} {
			series[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := series[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown series %q\n", which)
		os.Exit(2)
	}
	fn()
}

// leakSeries abandons one selective receive per round and samples the
// manager's request list, with and without nacks.
func leakSeries() {
	fmt.Println("# series: msgqueue pending requests vs abandonment rounds")
	fmt.Println("rounds,fig8_leaky_pending,fig9_nacks_pending")
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	_ = rt.Run(func(th *killsafe.Thread) {
		leaky := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: false})
		clean := msgqueue.NewWith[int](th, msgqueue.Options{Nacks: true})
		abandonOne := func(q *msgqueue.Queue[int]) {
			_, _ = core.Sync(th, core.Choice(
				q.RecvEvt(func(int) bool { return false }),
				core.Always(core.Unit{}),
			))
		}
		const step, steps = 50, 10
		for s := 1; s <= steps; s++ {
			for i := 0; i < step; i++ {
				abandonOne(leaky)
				abandonOne(clean)
			}
			// Give gave-up processing a moment to settle.
			deadline := time.Now().Add(time.Second)
			for clean.PendingRequests() > 0 && time.Now().Before(deadline) {
				_ = killsafe.Sleep(th, time.Millisecond)
			}
			fmt.Printf("%d,%d,%d\n", s*step, leaky.PendingRequests(), clean.PendingRequests())
		}
	})
}

// throughputSeries measures queue items/sec as producers scale.
func throughputSeries() {
	fmt.Println("# series: kill-safe queue throughput vs producers")
	fmt.Println("producers,items_per_sec")
	for _, producers := range []int{1, 2, 4, 8} {
		rt := killsafe.NewRuntime()
		const items = 20000
		var elapsed time.Duration
		_ = rt.Run(func(th *killsafe.Thread) {
			q := queue.New[int](th)
			per := items / producers
			start := time.Now()
			for p := 0; p < producers; p++ {
				th.Spawn("producer", func(x *killsafe.Thread) {
					for i := 0; i < per; i++ {
						if err := q.Send(x, i); err != nil {
							return
						}
					}
				})
			}
			for i := 0; i < per*producers; i++ {
				if _, err := q.Recv(th); err != nil {
					return
				}
			}
			elapsed = time.Since(start)
		})
		rt.Shutdown()
		fmt.Printf("%d,%.0f\n", producers, float64(items)/elapsed.Seconds())
	}
}

// guardSeries measures send+recv rounds for the unsafe and kill-safe
// queues.
func guardSeries() {
	fmt.Println("# series: per-round cost, unsafe vs kill-safe queue")
	fmt.Println("variant,ns_per_round")
	run := func(name string, mk func(*killsafe.Thread) *queue.Queue[int]) {
		rt := killsafe.NewRuntime()
		const rounds = 20000
		var elapsed time.Duration
		_ = rt.Run(func(th *killsafe.Thread) {
			q := mk(th)
			start := time.Now()
			for i := 0; i < rounds; i++ {
				if err := q.Send(th, i); err != nil {
					return
				}
				if _, err := q.Recv(th); err != nil {
					return
				}
			}
			elapsed = time.Since(start)
		})
		rt.Shutdown()
		fmt.Printf("%s,%.0f\n", name, float64(elapsed.Nanoseconds())/rounds)
	}
	run("unsafe", queue.NewUnsafe[int])
	run("killsafe", queue.New[int])
}

// shutdownSeries measures custodian shutdown + reap latency against the
// number of controlled threads.
func shutdownSeries() {
	fmt.Println("# series: custodian shutdown+reap latency vs controlled threads")
	fmt.Println("threads,microseconds")
	for _, n := range []int{1, 10, 50, 100, 250} {
		rt := killsafe.NewRuntime()
		var elapsed time.Duration
		_ = rt.Run(func(th *killsafe.Thread) {
			c := killsafe.NewCustodian(rt.RootCustodian())
			th.WithCustodian(c, func() {
				for i := 0; i < n; i++ {
					th.Spawn("victim", func(x *killsafe.Thread) {
						_ = killsafe.Sleep(x, time.Hour)
					})
				}
			})
			start := time.Now()
			c.Shutdown()
			rt.TerminateCondemned()
			elapsed = time.Since(start)
		})
		rt.Shutdown()
		fmt.Printf("%d,%.1f\n", n, float64(elapsed.Microseconds()))
	}
}

// swapSeries measures direct vs kill-safe swap rounds.
func swapSeries() {
	fmt.Println("# series: swap round cost, direct vs kill-safe")
	fmt.Println("variant,ns_per_swap")
	run := func(name string, mk func(*killsafe.Thread) *swapchan.Swap[int]) {
		rt := killsafe.NewRuntime()
		const rounds = 5000
		var elapsed time.Duration
		_ = rt.Run(func(th *killsafe.Thread) {
			sc := mk(th)
			th.Spawn("partner", func(x *killsafe.Thread) {
				for {
					if _, err := sc.Swap(x, 0); err != nil {
						return
					}
				}
			})
			start := time.Now()
			for i := 0; i < rounds; i++ {
				if _, err := sc.Swap(th, i); err != nil {
					return
				}
			}
			elapsed = time.Since(start)
		})
		rt.Shutdown()
		fmt.Printf("%s,%.0f\n", name, float64(elapsed.Nanoseconds())/rounds)
	}
	run("direct", swapchan.New[int])
	run("killsafe", swapchan.NewKillSafe[int])
}
