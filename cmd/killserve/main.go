// Command killserve serves the kill-safe servlet router over real TCP
// sockets via internal/netsvc — the paper's administrator scenario made
// concrete: every connection is a session thread under its own custodian,
// and an administrator can terminate any live session mid-request
// (closing its socket, reclaiming its thread) without wedging the shared
// abstractions or the server.
//
// Run:
//
//	go run ./cmd/killserve -addr 127.0.0.1:8080
//
// then from another terminal:
//
//	curl http://127.0.0.1:8080/                    # route index
//	curl http://127.0.0.1:8080/slow?ms=30000 &     # a long-running session
//	curl http://127.0.0.1:8080/admin/sessions      # find its ID
//	curl "http://127.0.0.1:8080/admin/kill?id=N"   # kill it mid-request
//	curl http://127.0.0.1:8080/debug/stats         # killed counter ticks
//	curl http://127.0.0.1:8080/debug/killsafe/stats # runtime metrics + per-shard breakdown
//
// With -admin HOST:PORT the /debug/killsafe/* documents (plus expvar's
// /debug/vars) are also served out-of-band on a separate plain HTTP
// listener, reachable even when every serving slot is busy; with
// -flight-recorder N each shard keeps its last N scheduler decisions,
// dumpable at /debug/killsafe/trace in the explore replay format.
//
// With -shards N the server runs N independent runtimes behind one
// listener (netsvc.ServeSharded): each shard is a whole VM with its own
// custodian tree and servlet instance, so /admin/kill reaches only the
// sessions of the shard that serves the request, and /debug/stats
// reports the fleet-wide aggregate from any shard.
//
// With -protocol resp the listener speaks RESP instead of HTTP/1.1:
// GET/SET/DEL/STATS map onto the transactional KV store mounted at /kv
// (one store, shared by every shard through a Gateway), MULTI/EXEC runs
// an atomic batch, and CALL <path> reaches any servlet route — so
// redis-cli-style sessions and /admin/kill coexist on one socket:
//
//	go run ./cmd/killserve -protocol resp
//	printf 'SET k 1\r\nGET k\r\nCALL /admin/sessions\r\n' | nc 127.0.0.1 8080
//
// The same /kv servlet routes are mounted in HTTP mode too
// (/kv?key=..., /kv/multi?ops=..., /kv/stats).
//
// SIGINT/SIGTERM drains gracefully (in-flight requests finish within the
// grace period; stragglers are killed). See examples/killserve/demo.sh
// for a scripted walkthrough.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/abstractions/kvtxn"
	"repro/internal/core"
	"repro/internal/netsvc"
	"repro/internal/obs"
	"repro/internal/web"
)

// buildRoutes registers the demo routes on ws. It is called once per
// runtime: in sharded mode each shard gets its own web.Server instance
// and its own route closures, bound to that shard's runtime. The KV
// gateway is shared: every shard mounts the same gw, so /kv reads and
// writes hit one transactional store regardless of which shard (or
// which protocol) carried the request.
// The fleet pointer is late-bound: ServeSharded runs setup (and thus
// buildRoutes) before it returns the *ShardedServer, so the /admin/drain
// closure loads it at request time.
func buildRoutes(rt *core.Runtime, ws *web.Server, shard, shards int, gw *kvtxn.Gateway,
	fleet *atomic.Pointer[netsvc.ShardedServer], grace time.Duration) {
	kvtxn.Mount(ws, gw, "/kv")
	ws.Handle("/", func(_ *core.Thread, _ *web.Session, _ *web.Request) web.Response {
		return web.Response{Status: 200, Body: strings.Join([]string{
			"killserve — kill-safe TCP serving demo",
			"  /hello               greet",
			"  /slow?ms=N           hold the request open N milliseconds (default 30000)",
			"  /whoami              this connection's session ID (and shard)",
			"  /admin/sessions      live session IDs on this shard ('you' is this request's own)",
			"  /admin/kill?id=N     terminate session N mid-request (this shard only)",
			"  /admin/drain?shard=N retire shard N's runtime and hand off to a replacement (sharded mode)",
			"  /kv?key=K            transactional KV store (PUT/DELETE too; shared across shards)",
			"  /kv/multi?ops=...    atomic batch (w:k:v,r:k,d:k)",
			"  /kv/stats            store commit/abort counters",
			"  /debug/stats         serving counters (fleet-wide aggregate)",
			"  /debug/killsafe/stats      runtime metrics, per-shard breakdown",
			"  /debug/killsafe/custodians live custodian trees",
			"  /debug/killsafe/trace      flight-recorder dump (?shard=N)",
			"",
		}, "\n")}
	})
	ws.Handle("/hello", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
		name := req.Query["name"]
		if name == "" {
			name = "world"
		}
		return web.Response{Status: 200, Body: "hello, " + name + "\n"}
	})
	ws.Handle("/whoami", func(_ *core.Thread, s *web.Session, _ *web.Request) web.Response {
		return web.Response{Status: 200, Body: fmt.Sprintf("session %d on shard %d/%d\n", s.ID, shard, shards)}
	})
	ws.Handle("/slow", func(x *core.Thread, s *web.Session, req *web.Request) web.Response {
		ms := 30000
		if n, err := strconv.Atoi(req.Query["ms"]); err == nil && n >= 0 {
			ms = n
		}
		// The session thread blocks here at a safe point: an
		// /admin/kill lands cleanly, closing this socket.
		if err := core.Sleep(x, time.Duration(ms)*time.Millisecond); err != nil {
			return web.Response{Status: 500, Body: "interrupted\n"}
		}
		return web.Response{Status: 200, Body: fmt.Sprintf("session %d survived %dms\n", s.ID, ms)}
	})
	ws.Handle("/admin/sessions", func(_ *core.Thread, s *web.Session, _ *web.Request) web.Response {
		ids := ws.Sessions()
		sort.Ints(ids)
		var b strings.Builder
		fmt.Fprintf(&b, "you: %d (shard %d)\n", s.ID, shard)
		for _, id := range ids {
			fmt.Fprintf(&b, "session %d\n", id)
		}
		return web.Response{Status: 200, Body: b.String()}
	})
	ws.Handle("/admin/kill", func(_ *core.Thread, s *web.Session, req *web.Request) web.Response {
		id, err := strconv.Atoi(req.Query["id"])
		if err != nil {
			return web.Response{Status: 400, Body: "usage: /admin/kill?id=N\n"}
		}
		ws.Terminate(id)
		rt.TerminateCondemned()
		note := ""
		if id == s.ID {
			note = " (that was this session — the closed connection is the proof)"
		}
		return web.Response{Status: 200, Body: fmt.Sprintf("terminated session %d%s\n", id, note)}
	})
	ws.Handle("/admin/drain", func(_ *core.Thread, _ *web.Session, req *web.Request) web.Response {
		m := fleet.Load()
		if m == nil {
			return web.Response{Status: 400, Body: "live drain requires -shards > 1\n"}
		}
		n, err := strconv.Atoi(req.Query["shard"])
		if err != nil || n < 0 || n >= m.NumShards() {
			return web.Response{Status: 400, Body: "usage: /admin/drain?shard=N\n"}
		}
		// The handoff waits for in-flight sessions — possibly including
		// this one — so it must not run on a serving thread: fire it from
		// plain Go and answer 202 immediately.
		go func() {
			if err := m.DrainShard(n, grace); err != nil {
				fmt.Fprintf(os.Stderr, "killserve: drain shard %d: %v\n", n, err)
			}
		}()
		return web.Response{Status: 202, Body: fmt.Sprintf("draining shard %d (grace %s)\n", n, grace)}
	})
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	maxConns := flag.Int("max-conns", 64, "maximum concurrently served connections per shard (excess wait in the accept queue)")
	maxPending := flag.Int("max-pending", 32, "connections allowed to wait for a serving slot before new ones are shed with 503 (negative disables shedding)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request handler deadline; over-budget requests get 503 (0 = unlimited)")
	idle := flag.Duration("idle-timeout", 10*time.Second, "per-connection idle/read deadline")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight requests")
	shards := flag.Int("shards", 1, "independent runtime shards behind the listener (1 = single runtime)")
	admin := flag.String("admin", "", "out-of-band admin listen address serving /debug/killsafe/{stats,trace,custodians} and /debug/vars (empty disables)")
	recorder := flag.Int("flight-recorder", 0, "flight-recorder ring size per shard for /debug/killsafe/trace (0 disables, negative = default size)")
	protocol := flag.String("protocol", "http", "wire protocol spoken on the listener: http (HTTP/1.1 keep-alive) or resp (Redis serialization protocol; GET/SET/DEL/MULTI/EXEC map onto /kv)")
	admitTarget := flag.Duration("admit-target", 0, "adaptive admission queue-delay target: sustained sojourn above it sheds by class — admin never, normal paced, bulk outright (0 disables; try 5ms)")
	drainEvery := flag.Duration("drain-interval", 0, "rolling live drain: every interval retire the next shard in rotation and hand off to a fresh runtime (0 disables; requires -shards > 1)")
	flag.Parse()

	cfg := netsvc.Config{
		Addr:           *addr,
		MaxConns:       *maxConns,
		MaxPending:     *maxPending,
		IdleTimeout:    *idle,
		RequestTimeout: *reqTimeout,
		Shards:         *shards,
		FlightRecorder: *recorder,
		Protocol:       *protocol,
		AdmitTarget:    *admitTarget,
	}

	// One transactional store behind a Gateway, shared by every shard and
	// both protocols. Ops issued before the store's home shard has bound
	// the gateway queue safely.
	gw := kvtxn.NewGateway()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	// startAdmin serves the observability surface on a separate plain
	// net/http listener: the same /debug/killsafe/* documents the in-band
	// routes answer, plus expvar's /debug/vars. Out-of-band on purpose —
	// it stays reachable even with every serving slot wedged.
	startAdmin := func(s *netsvc.Server) {
		if *admin == "" {
			return
		}
		s.PublishExpvar("killsafe")
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/killsafe/stats", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, s.AdminStatsJSON())
		})
		mux.HandleFunc("/debug/killsafe/custodians", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, s.AdminCustodiansJSON())
		})
		mux.HandleFunc("/debug/killsafe/trace", func(w http.ResponseWriter, r *http.Request) {
			shard := -1
			if v := r.URL.Query().Get("shard"); v != "" {
				if n, err := strconv.Atoi(v); err == nil {
					shard = n
				}
			}
			text, ok := s.AdminTraceText(shard)
			if !ok {
				http.Error(w, "flight recorder not enabled (run with -flight-recorder N)", http.StatusNotFound)
				return
			}
			fmt.Fprint(w, text)
		})
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(*admin, mux); err != nil {
				fmt.Fprintf(os.Stderr, "killserve: admin listener: %v\n", err)
			}
		}()
		fmt.Printf("killserve: admin surface on http://%s/debug/killsafe/stats\n", *admin)
	}

	if *shards > 1 {
		var fleet atomic.Pointer[netsvc.ShardedServer]
		// The store lives on its own runtime, outside the serving shards:
		// a shard drain retires the shard's whole runtime, and the store
		// must outlive whichever engine happens to carry its requests.
		storeRt := core.NewRuntime()
		storeStop := core.NewExternal(storeRt)
		storeReady := make(chan struct{})
		storeDone := make(chan struct{})
		go func() {
			defer close(storeDone)
			_ = storeRt.Run(func(th *core.Thread) {
				gw.Bind(th, kvtxn.NewWith(th, kvtxn.Options{
					Strategy: kvtxn.Locking,
					Shards:   8,
					LockWait: 50 * time.Millisecond,
				}))
				close(storeReady)
				for {
					if _, err := core.Sync(th, storeStop.Evt()); err == nil {
						return
					}
				}
			})
		}()
		<-storeReady
		m, err := netsvc.ServeSharded(cfg, func(th *core.Thread, shard int) *web.Server {
			ws := web.NewServer(th)
			buildRoutes(th.Runtime(), ws, shard, *shards, gw, &fleet, *grace)
			return ws
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "killserve: %v\n", err)
			os.Exit(1)
		}
		fleet.Store(m)
		fmt.Printf("killserve: listening on %s://%s (shards=%d, max-conns=%d/shard, idle-timeout=%s)\n",
			*protocol, m.Addr(), *shards, *maxConns, *idle)
		startAdmin(m.Shard(0))
		// The fleet aggregate (admission gauges, drain counters included)
		// as one expvar document; the publisher re-reads through m on
		// every render, so it tracks engines across drains.
		obs.PublishExpvarFunc("killsafe.serving", func() any { return m.Stats() })
		if *drainEvery > 0 {
			go func() {
				for i := 0; ; i++ {
					time.Sleep(*drainEvery)
					if err := m.DrainShard(i%*shards, *grace); err != nil {
						return // fleet shutting down
					}
				}
			}()
			fmt.Printf("killserve: rolling drain every %s across %d shards\n", *drainEvery, *shards)
		}
		v := <-sigc
		fmt.Printf("killserve: received %v, draining %d shards (grace %s)...\n", v, *shards, *grace)
		if err := m.Shutdown(*grace); err != nil {
			fmt.Fprintf(os.Stderr, "killserve: shutdown: %v\n", err)
		}
		storeStop.Complete(core.Unit{})
		<-storeDone
		storeRt.Shutdown()
		// The counters are plain atomics on each shard's Server, so the
		// per-shard breakdown stays readable after the runtimes are down —
		// and includes the sessions the drain itself had to kill.
		perShard := m.ShardStats()
		st := m.Stats()
		fmt.Printf("killserve: done — accepted=%d drained=%d killed=%d timed_out=%d rejected=%d shed=%d adm_shed=%d migrated=%d shards_drained=%d deadlined=%d restarts=%d\n",
			st.Accepted, st.Drained, st.Killed, st.TimedOut, st.Rejected, st.Shed, st.AdmShed, st.Migrated, st.ShardsDrained, st.Deadlined, st.Restarts)
		for i, ss := range perShard {
			fmt.Printf("killserve:   shard %d — accepted=%d drained=%d killed=%d timed_out=%d rejected=%d shed=%d deadlined=%d restarts=%d\n",
				i, ss.Accepted, ss.Drained, ss.Killed, ss.TimedOut, ss.Rejected, ss.Shed, ss.Deadlined, ss.Restarts)
		}
		return
	}

	rt := core.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *core.Thread) {
		gw.Bind(th, kvtxn.NewWith(th, kvtxn.Options{
			Strategy: kvtxn.Locking,
			Shards:   8,
			LockWait: 50 * time.Millisecond,
		}))
		ws := web.NewServer(th)
		var noFleet atomic.Pointer[netsvc.ShardedServer] // stays nil: no live drain unsharded
		buildRoutes(rt, ws, 0, 1, gw, &noFleet, *grace)

		s, err := netsvc.Serve(th, ws, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "killserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("killserve: listening on %s://%s (max-conns=%d, idle-timeout=%s)\n",
			*protocol, s.Addr(), *maxConns, *idle)
		startAdmin(s)

		// Bridge SIGINT/SIGTERM into the event layer: a plain goroutine
		// waits on the signal channel and completes an External cell; the
		// main runtime thread syncs on it at a safe point.
		sig := core.NewExternal(rt)
		go func() { v := <-sigc; sig.Complete(v.String()) }()

		v, serr := core.Sync(th, sig.Evt())
		for serr != nil {
			v, serr = core.Sync(th, sig.Evt())
		}
		fmt.Printf("killserve: received %v, draining (grace %s)...\n", v, *grace)
		if err := s.Shutdown(th, *grace); err != nil {
			fmt.Fprintf(os.Stderr, "killserve: shutdown: %v\n", err)
		}
		st := s.Stats()
		fmt.Printf("killserve: done — accepted=%d drained=%d killed=%d timed_out=%d rejected=%d shed=%d deadlined=%d restarts=%d\n",
			st.Accepted, st.Drained, st.Killed, st.TimedOut, st.Rejected, st.Shed, st.Deadlined, st.Restarts)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "killserve: %v\n", err)
		os.Exit(1)
	}
}
