package killsafe_test

import (
	"testing"
	"time"

	killsafe "repro"
	"repro/abstractions/queue"
)

func TestTypedChannelRoundTrip(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		ch := killsafe.NewChannel[int](rt)
		th.Spawn("sender", func(s *killsafe.Thread) {
			_ = ch.Send(s, 42)
		})
		v, err := ch.Recv(th)
		if err != nil || v != 42 {
			t.Errorf("(%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedCombinators(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		ch := killsafe.NewChannel[string](rt)
		th.Spawn("sender", func(s *killsafe.Thread) { _ = ch.Send(s, "hi") })
		ev := killsafe.Choice(
			killsafe.Wrap(ch.RecvEvt(), func(s string) int { return len(s) }),
			killsafe.Wrap(killsafe.After(rt, 5*time.Second), func(killsafe.Unit) int { return -1 }),
		)
		v, err := killsafe.Sync(th, ev)
		if err != nil || v != 2 {
			t.Errorf("(%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedGuardAndNack(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		fired := make(chan struct{}, 1)
		ev := killsafe.Choice(
			killsafe.Always("now"),
			killsafe.NackGuard(func(g *killsafe.Thread, nack killsafe.Event[killsafe.Unit]) killsafe.Event[string] {
				g.Spawn("watcher", func(w *killsafe.Thread) {
					if _, err := killsafe.Sync(w, nack); err == nil {
						fired <- struct{}{}
					}
				})
				return killsafe.Never[string]()
			}),
		)
		v, err := killsafe.Sync(th, ev)
		if err != nil || v != "now" {
			t.Errorf("(%v, %v)", v, err)
		}
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Error("typed nack never fired")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInteroperatesWithAbstractions(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		q := queue.New[int](th)
		// A typed view of the queue's receive event.
		recv := killsafe.FromRaw[int](q.RecvEvt())
		if err := q.Send(th, 5); err != nil {
			t.Error(err)
			return
		}
		v, err := killsafe.Sync(th, recv)
		if err != nil || v != 5 {
			t.Errorf("(%v, %v)", v, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreFacade(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		s := killsafe.NewSemaphore(rt, 1)
		if _, err := killsafe.Sync(th, killsafe.WaitEvt(s)); err != nil {
			t.Error(err)
		}
		if s.TryWait() {
			t.Error("count should be exhausted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoneEvtFacade(t *testing.T) {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()
	err := rt.Run(func(th *killsafe.Thread) {
		child := th.Spawn("c", func(*killsafe.Thread) {})
		if _, err := killsafe.Sync(th, killsafe.DoneEvt(child)); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
