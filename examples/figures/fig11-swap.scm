; Figure 11 of "Kill-Safe Synchronization Abstractions" (PLDI 2004): a
; break-safe implementation of swap channels. Two synchronizing threads
; each provide a value to the other. One thread is elected client and one
; server by the choice of who receives the request; the committed second
; phase runs inside a wrap procedure, where breaks are implicitly
; disabled.

(define-struct sc (ch))
(define-struct req (v ch))

(define (swap-channel)
  (make-sc (channel)))

(define (swap-evt sc v)
  (guard-evt
   (lambda ()
     (define in-ch (channel))
     (choice-evt
      ;; Maybe act as server and receive req
      (wrap-evt (channel-recv-evt (sc-ch sc))
                (lambda (req)
                  ;; Reply to req
                  (sync (channel-send-evt (req-ch req) v))
                  (req-v req)))
      ;; Maybe act as client and send req
      (wrap-evt (channel-send-evt (sc-ch sc) (make-req v in-ch))
                (lambda (void)
                  ;; Receive answer to req
                  (sync (channel-recv-evt in-ch))))))))

;; --- demo ---
(define sc (swap-channel))
(define result (channel))
(spawn (lambda ()
         (sync (channel-send-evt result (sync (swap-evt sc 'apple))))))
(define mine (sync (swap-evt sc 'orange)))
(define theirs (sync (channel-recv-evt result)))
(printf "main got:    ~a~n" mine)    ; => apple
(printf "partner got: ~a~n" theirs)  ; => orange
