; Figure 12 of "Kill-Safe Synchronization Abstractions" (PLDI 2004): a
; kill-safe implementation of swap channels. A manager thread pairs
; swapping clients and delivers a value to each; nack-guard-evt tells the
; manager when a waiting client gives up, and the per-operation
; thread-resume guard keeps the manager exactly as alive as its users.

(define-struct sc (ch mgr-t))
(define-struct req (v ch gave-up))

(define (swap-channel)
  (define ch (channel))
  (define (serve-first)
    ;; Get first thread for swap
    (sync (wrap-evt (channel-recv-evt ch) serve-second)))
  (define (serve-second a)
    ;; Try to get second thread for swap
    (sync (choice-evt
           ;; Possibility 1 - got second thread, so swap
           (wrap-evt (channel-recv-evt ch)
                     (lambda (b)
                       ;; Send each thread the other's value
                       (send-eventually (req-ch a) (req-v b))
                       (send-eventually (req-ch b) (req-v a))
                       (serve-first)))
           ;; Possibility 2 - first gave up, so start over
           (wrap-evt (req-gave-up a)
                     (lambda (void)
                       (serve-first))))))
  (define (send-eventually ch v)
    ;; Spawn a thread, in case ch's thread isn't ready
    (spawn (lambda ()
             (sync (channel-send-evt ch v)))))
  (make-sc ch (spawn serve-first)))

(define (swap-evt sc v)
  (nack-guard-evt
   (lambda (gave-up)
     (define in-ch (channel))
     (thread-resume (sc-mgr-t sc) (current-thread))
     (sync (wrap-evt (channel-send-evt (sc-ch sc)
                                       (make-req v in-ch gave-up))
                     (lambda (void) in-ch))))))

;; --- demo: a basic swap ---
(define sc (swap-channel))
(define result (channel))
(spawn (lambda ()
         (sync (channel-send-evt result (sync (swap-evt sc 'apple))))))
(printf "main got:    ~a~n" (sync (swap-evt sc 'orange)))
(printf "partner got: ~a~n" (sync (channel-recv-evt result)))

;; --- demo: kill-safety ---
;; A waiting swapper's task is terminated; the manager sees the gave-up
;; event and cleanly pairs the next two swappers.
(define doomed
  (spawn (lambda () (sync (swap-evt sc 'poison)))))
(sleep 10)
(kill-thread doomed)
(sleep 10) ; let the manager observe the gave-up event
(spawn (lambda ()
         (sync (channel-send-evt result (sync (swap-evt sc 'left))))))
(printf "after kill:  ~a~n" (sync (swap-evt sc 'right)))
(printf "partner got: ~a~n" (sync (channel-recv-evt result)))
