; Figures 8 and 9 of "Kill-Safe Synchronization Abstractions" (PLDI 2004):
; a queue with selective dequeue, including the Figure 9 revision that
; uses nack-guard-evt so the manager can discard abandoned requests.

(define-struct q (in-ch req-ch mgr-t))
(define-struct req (pred out-ch gave-up-evt))

;; find-first-item : pred list (item -> evt) (-> evt) -> evt
;; Search queue items using pred; call k-found on the first match or
;; k-none if there is none. (Helper assumed by the paper's figure.)
(define (find-first-item pred items k-found k-none)
  (cond [(null? items) (k-none)]
        [(pred (car items)) (k-found (car items))]
        [else (find-first-item pred (cdr items) k-found k-none)]))

(define (msg-queue)
  (define in-ch (channel))
  (define req-ch (channel))
  (define never-evt (channel-recv-evt (channel)))
  (define (serve items reqs)
    (sync (apply choice-evt
                 ;; Maybe accept a send
                 (wrap-evt (channel-recv-evt in-ch)
                           (lambda (v)
                             ;; Accepted a send; enqueue it
                             (serve (append items (list v)) reqs)))
                 ;; Maybe accept a recv request
                 (wrap-evt (channel-recv-evt req-ch)
                           (lambda (req)
                             ;; Accepted a recv request; add it
                             (serve items (cons req reqs))))
                 ;; Maybe service a recv request in reqs, and watch for
                 ;; receivers that gave up (Figure 9's addition)
                 (append (map (make-service-evt items reqs) reqs)
                         (map (make-abandon-evt items reqs) reqs)))))
  (define (make-service-evt items reqs)
    (lambda (req)
      (find-first-item
       (req-pred req) items
       (lambda (item)
         ;; Found an item; try to service req
         (wrap-evt (channel-send-evt (req-out-ch req) item)
                   (lambda (void)
                     ;; Serviced, so remove item and request
                     (serve (remove item items) (remove req reqs)))))
       (lambda ()
         ;; No matching item to service req
         never-evt))))
  (define (make-abandon-evt items reqs)
    (lambda (req)
      ;; Event to detect that the receiver gives up
      (wrap-evt (req-gave-up-evt req)
                (lambda (void)
                  ;; Receiver gave up; remove request
                  (serve items (remove req reqs))))))
  (define mgr-t (spawn (lambda () (serve (list) (list)))))
  (make-q in-ch req-ch mgr-t))

(define (msg-queue-send-evt q v)
  (guard-evt
   (lambda ()
     (thread-resume (q-mgr-t q) (current-thread))
     (channel-send-evt (q-in-ch q) v))))

(define (msg-queue-recv-evt q pred)
  (nack-guard-evt
   (lambda (gave-up-evt)
     (define out-ch (channel))
     ;; Make sure the manager thread runs
     (thread-resume (q-mgr-t q) (current-thread))
     ;; Request an item matching pred, with reply to out-ch; also send
     ;; the server gave-up-evt so it can clean up
     (sync (channel-send-evt (q-req-ch q)
                             (make-req pred out-ch gave-up-evt)))
     ;; Result arrives on out-ch
     (channel-recv-evt out-ch))))

;; --- demo: selective dequeue preserves order ---
(define q (msg-queue))
(sync (msg-queue-send-evt q 1))
(sync (msg-queue-send-evt q 2))
(sync (msg-queue-send-evt q 3))
(printf "first even: ~a~n" (sync (msg-queue-recv-evt q even?)))
(printf "first odd:  ~a~n" (sync (msg-queue-recv-evt q odd?)))
(printf "next odd:   ~a~n" (sync (msg-queue-recv-evt q odd?)))

;; --- demo: the Section 6.2 leak scenario, fixed by Figure 9 ---
;; A choice of two selective receives sends two requests; one is
;; serviced and the other's nack fires, so the manager drops it instead
;; of accumulating it forever.
(sync (msg-queue-send-evt q 1))
(sync (msg-queue-send-evt q 2))
(printf "choice got: ~a~n"
        (sync (choice-evt (msg-queue-recv-evt q odd?)
                          (msg-queue-recv-evt q even?))))
(printf "remaining:  ~a~n" (sync (msg-queue-recv-evt q (lambda (x) #t))))
