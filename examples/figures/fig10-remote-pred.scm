; Figure 10 of "Kill-Safe Synchronization Abstractions" (PLDI 2004):
; the selective-dequeue queue revised so that client-supplied predicates
; run in a fresh thread under the *client's* custodian. A hostile
; predicate — one that suspends the current thread — incapacitates only
; its submitter, not the queue's manager.
;
; Note: as in the paper's figure, a pending request whose predicate
; matches nothing re-runs its predicate on each serve cycle. The Go
; implementation (abstractions/msgqueue) refines this with a tested-items
; counter; the demo below keeps every pending request satisfiable.

(define-struct q (in-ch req-ch mgr-t))
(define-struct req (pred out-ch gave-up-evt cust ok-items))

(define (msg-queue)
  (define in-ch (channel))
  (define req-ch (channel))
  (define (serve items reqs)
    (sync (apply choice-evt
                 ;; Maybe accept a send
                 (wrap-evt (channel-recv-evt in-ch)
                           (lambda (v)
                             (serve (append items (list v)) reqs)))
                 ;; Maybe accept a recv request
                 (wrap-evt (channel-recv-evt req-ch)
                           (lambda (req)
                             (serve items (cons req reqs))))
                 (append (map (make-service-evt items reqs) reqs)
                         (map (make-abandon-evt items reqs) reqs)))))
  (define (make-service-evt items reqs)
    (lambda (req)
      (if (null? (req-ok-items req))
          ;; Look for items acceptable to pred
          (wrap-evt (ok-items-evt req items)
                    (lambda (ok-items)
                      ;; Got a list of acceptable items, so update req
                      (serve items
                             (cons (new-ok-items req ok-items)
                                   (remove req reqs)))))
          ;; Use first acceptable item to service req
          (wrap-evt (channel-send-evt (req-out-ch req)
                                      (car (req-ok-items req)))
                    (lambda (void)
                      ;; Serviced, so remove item and request
                      (let ([item (car (req-ok-items req))])
                        (serve (remove item items)
                               (map (remove-ok-item item)
                                    (remove req reqs)))))))))
  (define (ok-items-evt req items)
    ;; New thread runs pred and delivers a list to items-ch
    (define items-ch (channel))
    (parameterize ([current-custodian (req-cust req)])
      (spawn (lambda ()
               (define ok-items (filter (req-pred req) items))
               (sync (channel-send-evt items-ch ok-items)))))
    (channel-recv-evt items-ch))
  (define (remove-ok-item item)
    ;; Given a req, remove item from its list of acceptable items
    (lambda (req)
      (new-ok-items req (remove item (req-ok-items req)))))
  (define (new-ok-items req ok-items)
    (make-req (req-pred req) (req-out-ch req) (req-gave-up-evt req)
              (req-cust req) ok-items))
  (define (make-abandon-evt items reqs)
    (lambda (req)
      (wrap-evt (req-gave-up-evt req)
                (lambda (void)
                  (serve items (remove req reqs))))))
  (define mgr-t (spawn (lambda () (serve (list) (list)))))
  (make-q in-ch req-ch mgr-t))

(define (msg-queue-send-evt q v)
  (guard-evt
   (lambda ()
     (thread-resume (q-mgr-t q) (current-thread))
     (channel-send-evt (q-in-ch q) v))))

(define (msg-queue-recv-evt q pred)
  (nack-guard-evt
   (lambda (gave-up-evt)
     (define out-ch (channel))
     (thread-resume (q-mgr-t q) (current-thread))
     ;; Include a custodian and an initially empty list of known
     ;; acceptable items
     (sync (channel-send-evt (q-req-ch q)
                             (make-req pred out-ch gave-up-evt
                                       (current-custodian) (list))))
     ;; Result arrives on out-ch
     (channel-recv-evt out-ch))))

;; --- demo: ordinary selective receive with a remote predicate ---
(define q (msg-queue))
(sync (msg-queue-send-evt q 1))
(sync (msg-queue-send-evt q 2))
(printf "even item: ~a~n" (sync (msg-queue-recv-evt q even?)))

;; --- demo: a hostile predicate harms only its submitter ---
(define hostile-cust (make-custodian))
(parameterize ([current-custodian hostile-cust])
  (spawn (lambda ()
           (define (die x) (thread-suspend (current-thread)))
           (sync (msg-queue-recv-evt q die)))))
(sleep 10)
(printf "manager suspended by hostile pred: ~a~n"
        (thread-suspended? (q-mgr-t q)))
;; An innocent client is still served.
(printf "odd item:  ~a~n" (sync (msg-queue-recv-evt q odd?)))
;; Terminate the hostile session; its predicate threads go with it.
(custodian-shutdown-all hostile-cust)
(printf "condemned reaped: ~a~n" (>= (terminate-condemned!) 1))
