; Figure 7 of "Kill-Safe Synchronization Abstractions" (PLDI 2004):
; the complete implementation of a kill-safe queue, transcribed for
; mzmini, followed by the Section 4 sharing scenario.

(define-struct q (in-ch out-ch mgr-t))

;; queue : -> q
(define (queue)
  (define in-ch (channel))   ; to accept sends into queue
  (define out-ch (channel))  ; to supply recvs from queue
  ;; A manager thread loops with serve
  (define (serve items)
    (if (null? items)
        ;; Nothing to supply a recv until we accept a send
        (serve (list (sync (channel-recv-evt in-ch))))
        ;; Accept a send or supply a recv, whichever is ready
        (sync
         (choice-evt
          (wrap-evt (channel-recv-evt in-ch)
                    (lambda (v)
                      ;; Accepted a send; enqueue it
                      (serve (append items (list v)))))
          (wrap-evt (channel-send-evt out-ch (car items))
                    (lambda (void)
                      ;; Supplied a recv; dequeue it
                      (serve (cdr items))))))))
  ;; Create the manager thread
  (define mgr-t (spawn (lambda () (serve (list)))))
  ;; Return a queue as an opaque q record
  (make-q in-ch out-ch mgr-t))

;; queue-send-evt : q value -> evt
(define (queue-send-evt q v)
  (guard-evt
   (lambda ()
     ;; Make sure the manager thread runs
     (thread-resume (q-mgr-t q) (current-thread))
     ;; Channel send
     (channel-send-evt (q-in-ch q) v))))

;; queue-recv-evt : q -> evt
(define (queue-recv-evt q)
  (guard-evt
   (lambda ()
     ;; Make sure the manager thread runs
     (thread-resume (q-mgr-t q) (current-thread))
     ;; Channel receive
     (channel-recv-evt (q-out-ch q)))))

;; --- demo: basic use ---
(define q0 (queue))
(sync (queue-send-evt q0 "Hello"))
(sync (queue-send-evt q0 "Bye"))
(printf "~a~n" (sync (queue-recv-evt q0)))  ; => Hello
(printf "~a~n" (sync (queue-recv-evt q0)))  ; => Bye

;; --- demo: the Section 4 scenario ---
;; t1, controlled by c1, creates q and hands it to the main task; then
;; c1 is shut down. The guard in each operation resurrects the manager,
;; so the main task's send and recv still work.
(define c1 (make-custodian))
(define hand-off (channel))
(parameterize ([current-custodian c1])
  (spawn (lambda ()
           (define q (queue))
           (sync (queue-send-evt q 10))
           (sync (channel-send-evt hand-off q))
           (sleep 1000000))))
(define q (sync (channel-recv-evt hand-off)))
(custodian-shutdown-all c1)
(printf "manager mostly dead: ~a~n" (thread-suspended? (q-mgr-t q)))
(printf "recv after shutdown: ~a~n" (sync (queue-recv-evt q)))
(sync (queue-send-evt q 11))
(printf "send+recv after shutdown: ~a~n" (sync (queue-recv-evt q)))
