// Chat: a multicast-based chat room whose members are terminable tasks.
//
// Each member subscribes a port on a kill-safe multicast channel. Members
// come and go — including by forced termination — and neither a dead nor a
// suspended member ever blocks the room: ports buffer independently, the
// multicast manager is yoked to every user, and terminating a member's
// custodian cleans up exactly that member.
//
// Run with: go run ./examples/chat
package main

import (
	"fmt"
	"time"

	killsafe "repro"
	"repro/abstractions/multicast"
	"repro/abstractions/queue"
)

func main() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()

	err := rt.Run(func(th *killsafe.Thread) {
		room := multicast.New[string](th)
		transcript := queue.New[string](th) // what members observed

		// join spawns a member task under its own custodian: it
		// subscribes, relays everything it hears into the transcript,
		// and can be terminated at any time.
		join := func(name string) *killsafe.Custodian {
			c := killsafe.NewCustodian(rt.RootCustodian())
			ready := make(chan struct{})
			th.WithCustodian(c, func() {
				th.Spawn(name, func(x *killsafe.Thread) {
					port, err := room.Subscribe(x)
					if err != nil {
						return
					}
					close(ready)
					for {
						msg, err := port.Recv(x)
						if err != nil {
							return
						}
						if err := transcript.Send(x, name+" heard: "+msg); err != nil {
							return
						}
					}
				})
			})
			<-ready
			return c
		}

		alice := join("alice")
		bob := join("bob")

		say := func(msg string) {
			if err := room.Send(th, msg); err != nil {
				panic(err)
			}
		}
		hear := func(n int) {
			for i := 0; i < n; i++ {
				line, err := transcript.Recv(th)
				if err != nil {
					panic(err)
				}
				fmt.Println(line)
			}
		}

		say("hello, room")
		hear(2) // alice and bob both heard it

		fmt.Println("-- bob's task is terminated mid-conversation --")
		bob.Shutdown()
		say("anyone still here?")
		hear(1) // only alice relays now; the room is unharmed

		fmt.Println("-- alice's task is terminated as well --")
		alice.Shutdown()
		time.Sleep(5 * time.Millisecond)
		reaped := rt.TerminateCondemned()
		fmt.Printf("member tasks reaped (≥2): %v\n", reaped >= 2)
		// The room itself belongs to this main task and is unharmed:
		say("posting to an empty room is fine")
		fmt.Println("room still accepts messages after all members died")
	})
	if err != nil {
		panic(err)
	}
}
