// Help system: the DrScheme scenario from the paper's Section 2.2.
//
// A web server and a browser run in the same virtual machine and talk
// through a socket-like abstraction whose core is a kill-safe buffered
// queue (abstractions/pipe). Both sides use termination for internal
// tasks — here, a browser "click" that is cancelled mid-request — and
// those terminations must not wreak havoc with the stream. Finally, the
// whole help system runs under one custodian ("DrScheme within
// DrScheme"), and shutting that custodian down reliably terminates the
// server, the browser, and the queue-manager threads.
//
// Run with: go run ./examples/helpsystem
package main

import (
	"fmt"
	"time"

	killsafe "repro"
	"repro/internal/web"
)

func main() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()

	err := rt.Run(func(th *killsafe.Thread) {
		// The whole help system lives under one custodian, like the
		// inner DrScheme under test.
		helpCust := killsafe.NewCustodian(rt.RootCustodian())

		type system struct {
			srv *web.Server
			b   *web.Browser
		}
		sysCh := make(chan system, 1)
		th.WithCustodian(helpCust, func() {
			th.Spawn("help-main", func(x *killsafe.Thread) {
				srv := web.NewServer(x)
				srv.Handle("/help", func(_ *killsafe.Thread, _ *web.Session, req *web.Request) web.Response {
					topic := req.Query["topic"]
					return web.Response{Status: 200, Body: "help page for " + topic}
				})
				b, _ := srv.Connect(x)
				sysCh <- system{srv: srv, b: b}
				_ = killsafe.Sleep(x, time.Hour)
			})
		})
		sys := <-sysCh

		fmt.Println("-- ordinary browsing --")
		status, body, err := sys.b.Get(th, "/help?topic=custodians")
		fmt.Printf("%d %q err=%v\n", status, body, err)

		// A browser click spawns an internal task that issues a request
		// over a second connection; the user cancels the click, which
		// terminates the task mid-request. The shared stream — and the
		// rest of the help system — must shrug it off.
		fmt.Println("\n-- cancelled click --")
		clickCust := killsafe.NewCustodian(rt.RootCustodian())
		b2, _ := sys.srv.Connect(th)
		started := make(chan struct{})
		th.WithCustodian(clickCust, func() {
			th.Spawn("click", func(x *killsafe.Thread) {
				close(started)
				for {
					if _, _, err := b2.Get(x, "/help?topic=clicked"); err != nil {
						return
					}
				}
			})
		})
		<-started
		time.Sleep(2 * time.Millisecond) // let some requests fly
		clickCust.Shutdown()             // cancel the click mid-request
		fmt.Println("click task terminated mid-request")

		// The original browsing session is unaffected.
		status, body, err = sys.b.Get(th, "/help?topic=events")
		fmt.Printf("browsing still works: %d %q err=%v\n", status, body, err)

		// "Testing DrScheme within DrScheme": terminate the inner help
		// system; it reliably takes its sessions and queue managers
		// along.
		fmt.Println("\n-- terminating the inner help system --")
		before := rt.LiveThreads()
		helpCust.Shutdown()
		sys.srv.Shutdown()
		reaped := rt.TerminateCondemned()
		time.Sleep(10 * time.Millisecond) // let killed threads unwind
		fmt.Printf("live threads before: %d, condemned reaped: %d, after: %d\n",
			before, reaped, rt.LiveThreads())
		fmt.Println("(the survivors are this main task and the stream managers")
		fmt.Println(" it owns — the outer system, unharmed by the inner shutdown)")
	})
	if err != nil {
		panic(err)
	}
}
