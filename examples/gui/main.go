// GUI: the paper's Section 6.2 motivation for selective dequeue, made
// concrete. A window's event queue receives mixed messages — mouse clicks
// and refresh requests. A repaint task handles only refresh messages,
// leaving clicks intact and ordered for the input task; re-posting
// unwanted messages (the naive alternative) would reorder them.
//
// The repaint task is then killed mid-stream: the queue is kill-safe, the
// abandoned selective request withdraws via its nack, and a replacement
// painter picks up where the dead one left off.
//
// Run with: go run ./examples/gui
package main

import (
	"fmt"
	"time"

	killsafe "repro"
	"repro/abstractions/msgqueue"
)

type message struct {
	Kind string // "click" or "refresh"
	Seq  int
}

func main() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()

	err := rt.Run(func(th *killsafe.Thread) {
		events := msgqueue.New[message](th)

		// Post a mixed stream of window messages.
		for i, kind := range []string{"click", "refresh", "click", "refresh", "click"} {
			if err := events.Send(th, message{Kind: kind, Seq: i}); err != nil {
				panic(err)
			}
		}

		isRefresh := func(m message) bool { return m.Kind == "refresh" }
		isClick := func(m message) bool { return m.Kind == "click" }

		// The painter handles only refresh messages.
		painted := make(chan message, 16)
		spawnPainter := func() *killsafe.Custodian {
			c := killsafe.NewCustodian(rt.RootCustodian())
			th.WithCustodian(c, func() {
				th.Spawn("painter", func(x *killsafe.Thread) {
					for {
						m, err := events.Recv(x, isRefresh)
						if err != nil {
							return
						}
						painted <- m
					}
				})
			})
			return c
		}
		painter := spawnPainter()

		m := <-painted
		fmt.Printf("painter handled %s #%d\n", m.Kind, m.Seq)

		// Kill the painter mid-stream (say, the window was resized and
		// its repaint task restarted). Its pending selective request
		// withdraws; the clicks were never disturbed.
		painter.Shutdown()
		rt.TerminateCondemned()
		fmt.Println("painter task terminated; spawning a replacement")
		_ = spawnPainter()

		m = <-painted
		fmt.Printf("new painter handled %s #%d\n", m.Kind, m.Seq)

		// The input task drains the clicks — still in their original
		// relative order, untouched by all the selective dequeuing.
		for i := 0; i < 3; i++ {
			m, err := events.Recv(th, isClick)
			if err != nil {
				panic(err)
			}
			fmt.Printf("input handled %s #%d\n", m.Kind, m.Seq)
		}

		// Sanity: nothing is left.
		v, _ := killsafe.Sync(th, killsafe.Choice(
			killsafe.Wrap(killsafe.FromRaw[message](events.RecvEvt(msgqueue.Any[message])),
				func(m message) string { return fmt.Sprintf("unexpected %v", m) }),
			killsafe.Wrap(killsafe.After(rt, 20*time.Millisecond),
				func(killsafe.Unit) string { return "queue drained" }),
		))
		fmt.Println(v)
	})
	if err != nil {
		panic(err)
	}
}
