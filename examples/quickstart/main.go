// Quickstart: the kill-safe queue from the paper's Section 4, in Go.
//
// A task creates a queue and shares it with another task; the creator's
// custodian is shut down ("killed"); the queue keeps working for the
// survivor because every queue operation is guarded by ResumeVia, the
// paper's two-argument thread-resume.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	killsafe "repro"
	"repro/abstractions/queue"
)

func main() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()

	err := rt.Run(func(th *killsafe.Thread) {
		// A separate task, under its own custodian, creates the queue
		// and enqueues a greeting.
		creatorCust := killsafe.NewCustodian(rt.RootCustodian())
		handOff := make(chan *queue.Queue[string], 1)
		th.WithCustodian(creatorCust, func() {
			th.Spawn("creator", func(x *killsafe.Thread) {
				q := queue.New[string](x)
				_ = q.Send(x, "hello from a task that is about to die")
				handOff <- q
				_ = killsafe.Sleep(x, time.Hour) // simulate ongoing work
			})
		})
		q := <-handOff

		// The administrator terminates the creator's task. The queue's
		// manager thread is now "only mostly dead": suspended, but
		// resurrectable by any surviving user.
		creatorCust.Shutdown()
		fmt.Printf("manager suspended after creator shutdown: %v\n",
			q.Manager().Suspended())

		// The survivor's receive guard resumes the manager and adds the
		// survivor's custodian to it, so the queue works again — with
		// its contents intact.
		msg, err := q.Recv(th)
		if err != nil {
			panic(err)
		}
		fmt.Printf("recv after shutdown: %q\n", msg)

		// Ordinary use continues.
		if err := q.Send(th, "and normal service resumes"); err != nil {
			panic(err)
		}
		msg, _ = q.Recv(th)
		fmt.Printf("send+recv after shutdown: %q\n", msg)

		// Queue events are first-class: multiplex a receive against a
		// timeout without corrupting the queue.
		v, _ := killsafe.Sync(th, killsafe.Choice(
			killsafe.Wrap(killsafe.FromRaw[string](q.RecvEvt()),
				func(s string) string { return "item: " + s }),
			killsafe.Wrap(killsafe.After(rt, 50*time.Millisecond),
				func(killsafe.Unit) string { return "timed out (queue empty, as expected)" }),
		))
		fmt.Println(v)
	})
	if err != nil {
		panic(err)
	}
}
