// Servlets: the paper's Section 2 motivating example, end to end.
//
// A web server hosts servlet sessions that the administrator may
// terminate at any time. Two sessions discover each other and share a
// collaborative document — a kill-safe abstraction neither the server
// kernel nor the other session needs to trust. The administrator
// terminates the session that created the document; the other session
// keeps editing. Terminating every sharing session terminates the
// document too: it gained no privilege beyond its users' sum.
//
// Run with: go run ./examples/servlets
package main

import (
	"fmt"
	"strings"

	killsafe "repro"
	"repro/internal/doc"
	"repro/internal/web"
)

func main() {
	rt := killsafe.NewRuntime()
	defer rt.Shutdown()

	err := rt.Run(func(th *killsafe.Thread) {
		srv := web.NewServer(th)

		// The collaborative-document servlet: the first session to use
		// it creates the document (under that session's custodian) and
		// publishes it; later sessions discover and promote it.
		srv.Handle("/edit", func(x *killsafe.Thread, s *web.Session, req *web.Request) web.Response {
			var d *doc.Document
			if v, ok := srv.Lookup("doc"); ok {
				d = v.(*doc.Document)
			} else {
				d = doc.New(x)
				srv.Publish("doc", d)
			}
			if line := req.Query["line"]; line != "" {
				if _, err := d.Append(x, fmt.Sprintf("[session %d] %s", s.ID, line)); err != nil {
					return web.Response{Status: 500, Body: err.Error()}
				}
			}
			_, lines, err := d.Snapshot(x)
			if err != nil {
				return web.Response{Status: 500, Body: err.Error()}
			}
			return web.Response{Status: 200, Body: strings.Join(lines, "\n")}
		})

		// Two browsers connect: two servlet sessions.
		b1, s1 := srv.Connect(th)
		b2, _ := srv.Connect(th)

		get := func(b *web.Browser, target string) string {
			status, body, err := b.Get(th, target)
			if err != nil {
				return fmt.Sprintf("error: %v", err)
			}
			return fmt.Sprintf("%d\n%s", status, body)
		}

		fmt.Println("-- session 1 creates the document --")
		fmt.Println(get(b1, "/edit?line=alpha"))
		fmt.Println("-- session 2 discovers and edits it --")
		fmt.Println(get(b2, "/edit?line=beta"))

		fmt.Printf("\nadministrator terminates session %d (the creator)\n\n", s1.ID)
		srv.Terminate(s1.ID)

		fmt.Println("-- session 2 keeps editing: the document is kill-safe --")
		fmt.Println(get(b2, "/edit?line=gamma"))

		v, _ := srv.Lookup("doc")
		d := v.(*doc.Document)
		fmt.Printf("\ndocument manager suspended? %v (a user survives)\n", d.Manager().Suspended())

		fmt.Println("\nadministrator shuts the whole server down")
		srv.Shutdown()
		fmt.Printf("document manager suspended? %v (no users survive)\n", d.Manager().Suspended())
		fmt.Printf("condemned threads reaped: %d\n", rt.TerminateCondemned())
	})
	if err != nil {
		panic(err)
	}
}
