#!/bin/sh
# Demo: serve kill-safe servlets over real TCP, then have an
# administrator terminate a live session mid-request.
#
# Walkthrough (see also cmd/killserve/main.go):
#   1. start killserve on a loopback port
#   2. park a long request on /slow (it holds its connection open)
#   3. list live sessions via /admin/sessions and pick the parked one
#   4. /admin/kill it — its curl dies with a closed connection,
#      the server keeps serving, and /debug/stats counts the kill
#   5. SIGINT the server: graceful drain, final counters on stdout
set -eu

ADDR=${ADDR:-127.0.0.1:8931}
BASE="http://$ADDR"
cd "$(dirname "$0")/../.."

echo "==> building killserve"
go build -o /tmp/killserve ./cmd/killserve

echo "==> starting killserve on $ADDR"
/tmp/killserve -addr "$ADDR" -max-conns 16 -idle-timeout 10s &
SERVER=$!
trap 'kill $SERVER 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    curl -sf "$BASE/hello" >/dev/null 2>&1 && break
    sleep 0.1
done

echo "==> a normal request"
curl -s "$BASE/hello?name=demo"

echo "==> parking a long request on /slow (background curl)"
curl -s --max-time 60 "$BASE/slow?ms=60000" > /tmp/killserve-victim.out 2>&1 &
VICTIM=$!
sleep 0.5

echo "==> live sessions (the admin's own is marked 'you')"
SESSIONS=$(curl -s "$BASE/admin/sessions")
echo "$SESSIONS"

# The parked session is every listed ID except the admin request's own.
YOU=$(echo "$SESSIONS" | sed -n 's/^you: //p')
TARGET=$(echo "$SESSIONS" | sed -n 's/^session //p' | grep -vx "$YOU" | head -n 1)
echo "==> killing session $TARGET mid-request"
curl -s "$BASE/admin/kill?id=$TARGET"

echo "==> the victim's curl exits with a closed connection:"
if wait $VICTIM; then
    echo "UNEXPECTED: victim completed: $(cat /tmp/killserve-victim.out)"
    exit 1
else
    echo "victim curl failed as expected (connection closed by kill)"
fi

echo "==> the server is unharmed"
curl -s "$BASE/hello?name=survivor"

echo "==> serving counters"
curl -s "$BASE/debug/stats"; echo

echo "==> graceful shutdown (SIGINT)"
kill -INT $SERVER
wait $SERVER || true
trap - EXIT
echo "==> demo complete"
